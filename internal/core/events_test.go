package core

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/rng"
)

// eventLog records membership events and mirrors them into a set so tests
// can compare against the node's actual active view.
type eventLog struct {
	ups     []id.ID
	downs   []id.ID
	reasons []DownReason
	current map[id.ID]bool
}

func newEventLog() *eventLog {
	return &eventLog{current: make(map[id.ID]bool)}
}

func (l *eventLog) listener() Listener {
	return Listener{
		NeighborUp: func(p id.ID) {
			l.ups = append(l.ups, p)
			l.current[p] = true
		},
		NeighborDown: func(p id.ID, r DownReason) {
			l.downs = append(l.downs, p)
			l.reasons = append(l.reasons, r)
			delete(l.current, p)
		},
	}
}

func TestListenerUpOnJoinAccept(t *testing.T) {
	n, _ := newTestNode(1)
	log := newEventLog()
	n.SetListener(log.listener())
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	if len(log.ups) != 1 || log.ups[0] != 10 {
		t.Errorf("ups = %v, want [n10]", log.ups)
	}
}

func TestListenerDownReasons(t *testing.T) {
	n, _ := newTestNode(1)
	log := newEventLog()
	n.SetListener(log.listener())

	// Fill the view, then evict via a high-priority request.
	for i := id.ID(10); i < id.ID(10+uint64(n.Config().ActiveSize)); i++ {
		n.Deliver(i, msg.Message{Type: msg.Neighbor, Sender: i, Priority: msg.HighPriority})
	}
	n.Deliver(99, msg.Message{Type: msg.Neighbor, Sender: 99, Priority: msg.HighPriority})
	if len(log.downs) != 1 || log.reasons[0] != DownEvicted {
		t.Fatalf("downs=%v reasons=%v, want one eviction", log.downs, log.reasons)
	}

	// Failure detection.
	n.OnPeerDown(99)
	if log.reasons[len(log.reasons)-1] != DownFailed {
		t.Errorf("last reason = %v, want failed", log.reasons[len(log.reasons)-1])
	}

	// DISCONNECT.
	survivor := n.Active()[0]
	n.Deliver(survivor, msg.Message{Type: msg.Disconnect, Sender: survivor})
	if log.reasons[len(log.reasons)-1] != DownDisconnected {
		t.Errorf("last reason = %v, want disconnected", log.reasons[len(log.reasons)-1])
	}
}

func TestListenerMirrorsActiveView(t *testing.T) {
	// Fuzz the node; after every step the listener's mirrored set must
	// exactly equal the active view.
	n, env := newTestNode(1)
	log := newEventLog()
	n.SetListener(log.listener())
	r := rng.New(3)
	types := []msg.Type{msg.Join, msg.ForwardJoin, msg.Disconnect, msg.Neighbor,
		msg.NeighborReply, msg.Shuffle, msg.ShuffleReply}
	for i := 0; i < 3000; i++ {
		from := id.ID(r.Intn(30) + 2)
		m := msg.Message{
			Type:     types[r.Intn(len(types))],
			Sender:   from,
			Subject:  id.ID(r.Intn(30) + 2),
			TTL:      uint8(r.Intn(8)),
			Priority: msg.Priority(r.Intn(2) + 1),
			Accept:   r.Bool(),
		}
		if r.Intn(10) == 0 {
			env.down[id.ID(r.Intn(30)+2)] = r.Bool()
		}
		if r.Intn(20) == 0 {
			n.OnPeerDown(id.ID(r.Intn(30) + 2))
		}
		n.Deliver(from, m)
		env.take()

		active := n.Active()
		if len(active) != len(log.current) {
			t.Fatalf("step %d: view size %d, mirror size %d", i, len(active), len(log.current))
		}
		for _, a := range active {
			if !log.current[a] {
				t.Fatalf("step %d: %v in view but mirror missed it", i, a)
			}
		}
	}
}

func TestDownReasonString(t *testing.T) {
	tests := map[DownReason]string{
		DownFailed:       "failed",
		DownDisconnected: "disconnected",
		DownEvicted:      "evicted",
		DownReason(99):   "unknown",
	}
	for r, want := range tests {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
