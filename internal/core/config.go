// Package core implements the HyParView membership protocol (Leitão,
// Pereira, Rodrigues — "HyParView: a membership protocol for reliable
// gossip-based broadcast", DI–FCUL TR–07–13 / DSN 2007).
//
// Each node maintains two views (paper §4.1):
//
//   - a small symmetric ACTIVE view (size fanout+1) over which broadcasts are
//     flooded deterministically and whose links double as failure detectors
//     (TCP in a deployment, synchronous send errors in the simulator);
//   - a larger PASSIVE view of backup identifiers, refreshed by periodic
//     TTL-bounded shuffles, from which replacements are promoted whenever an
//     active member fails.
//
// The package is transport-agnostic: it speaks through peer.Env and is hosted
// either by the deterministic simulator (internal/netsim) or by the real TCP
// transport (internal/transport).
package core

import "fmt"

// Config carries the HyParView protocol parameters. The defaults mirror the
// paper's experimental setting (§5.1) for a 10,000-node system.
type Config struct {
	// ActiveSize is the maximum size of the active view. The paper sets it
	// to fanout+1 = 5: links are symmetric, so one slot is "spent" on the
	// peer a message arrived from.
	ActiveSize int

	// PassiveSize is the maximum size of the passive view (paper: 30, which
	// must exceed log n for connectivity under massive failures).
	PassiveSize int

	// ARWL (Active Random Walk Length) is the TTL of FORWARDJOIN random
	// walks (paper: 6).
	ARWL uint8

	// PRWL (Passive Random Walk Length) is the TTL value at which a
	// FORWARDJOIN walk also deposits the joiner into the passive view
	// (paper: 3).
	PRWL uint8

	// ShuffleKa is the number of active-view members included in a shuffle
	// exchange list (paper: 3).
	ShuffleKa int

	// ShuffleKp is the number of passive-view members included in a shuffle
	// exchange list (paper: 4). Together with the node's own identifier the
	// paper's total shuffle list size is 8.
	ShuffleKp int

	// ShuffleTTL is the random-walk TTL of SHUFFLE requests. The paper
	// propagates them "just like FORWARDJOIN requests"; we default to ARWL.
	ShuffleTTL uint8

	// DisablePriority turns off the high/low NEIGHBOR priority mechanism
	// (every request is treated as low priority). Used only by the ablation
	// benchmarks; the paper's protocol always uses priorities.
	DisablePriority bool

	// ShuffleInterval, when non-zero, makes the node schedule its own
	// periodic round — shuffle plus active-view repair, the paper's ΔT —
	// every ShuffleInterval scheduler ticks, registered on the
	// environment's peer.Scheduler at construction. This is the
	// paper-faithful periodic mode: rounds are timer events interleaved
	// with network traffic, identical in the simulator's virtual time and
	// on the transport's real clock (where one tick is 1ms). Zero keeps
	// the node externally driven through OnCycle (the simulator's
	// cycle-driven mode). Not defaulted: the two driving modes are a
	// deliberate harness choice.
	ShuffleInterval uint64
}

// DefaultConfig returns the paper's §5.1 parameters.
func DefaultConfig() Config {
	return Config{
		ActiveSize:  5,
		PassiveSize: 30,
		ARWL:        6,
		PRWL:        3,
		ShuffleKa:   3,
		ShuffleKp:   4,
		ShuffleTTL:  6,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.ActiveSize <= 0:
		return fmt.Errorf("core: ActiveSize must be positive, got %d", c.ActiveSize)
	case c.PassiveSize <= 0:
		return fmt.Errorf("core: PassiveSize must be positive, got %d", c.PassiveSize)
	case c.PRWL > c.ARWL:
		return fmt.Errorf("core: PRWL (%d) must not exceed ARWL (%d)", c.PRWL, c.ARWL)
	case c.ShuffleKa < 0 || c.ShuffleKp < 0:
		return fmt.Errorf("core: shuffle sample sizes must be non-negative (ka=%d kp=%d)",
			c.ShuffleKa, c.ShuffleKp)
	case c.ShuffleKa > c.ActiveSize:
		return fmt.Errorf("core: ShuffleKa (%d) exceeds ActiveSize (%d)", c.ShuffleKa, c.ActiveSize)
	case c.ShuffleKp > c.PassiveSize:
		return fmt.Errorf("core: ShuffleKp (%d) exceeds PassiveSize (%d)", c.ShuffleKp, c.PassiveSize)
	}
	return nil
}

// WithDefaults fills zero-valued fields from DefaultConfig so that callers
// can override only the parameters they care about.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.ActiveSize == 0 {
		c.ActiveSize = d.ActiveSize
	}
	if c.PassiveSize == 0 {
		c.PassiveSize = d.PassiveSize
	}
	if c.ARWL == 0 {
		c.ARWL = d.ARWL
	}
	if c.PRWL == 0 {
		c.PRWL = d.PRWL
	}
	if c.ShuffleKa == 0 {
		c.ShuffleKa = d.ShuffleKa
	}
	if c.ShuffleKp == 0 {
		c.ShuffleKp = d.ShuffleKp
	}
	if c.ShuffleTTL == 0 {
		c.ShuffleTTL = c.ARWL
	}
	return c
}
