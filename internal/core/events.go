package core

import "hyparview/internal/id"

// Listener receives membership change notifications. Applications built on
// HyParView (tree-based broadcast like Plumtree, partial-view replication,
// connection pools) need to track the current overlay neighbors; these
// callbacks fire synchronously from the protocol goroutine whenever the
// active view changes.
//
// Callbacks must be fast and must not call back into the Node.
type Listener struct {
	// NeighborUp fires after peer enters the active view.
	NeighborUp func(peer id.ID)
	// NeighborDown fires after peer leaves the active view, for any reason
	// (failure, DISCONNECT, eviction by a higher-priority member). The
	// reason is reported alongside.
	NeighborDown func(peer id.ID, reason DownReason)
}

// DownReason explains why a neighbor left the active view.
type DownReason uint8

// Down reasons.
const (
	// DownFailed: the peer was detected as crashed (send failure or
	// connection reset).
	DownFailed DownReason = iota + 1
	// DownDisconnected: the peer sent us a DISCONNECT notification.
	DownDisconnected
	// DownEvicted: we evicted the (live) peer to make room in the active
	// view; it was demoted to the passive view.
	DownEvicted
)

// String names the reason.
func (r DownReason) String() string {
	switch r {
	case DownFailed:
		return "failed"
	case DownDisconnected:
		return "disconnected"
	case DownEvicted:
		return "evicted"
	default:
		return "unknown"
	}
}

// SetListener installs (or replaces, or removes with Listener{}) the
// membership listener. It must be called from the protocol goroutine — in
// practice right after New, before the node processes traffic.
func (n *Node) SetListener(l Listener) {
	n.listener = l
}

// notifyUp fires the NeighborUp callback.
func (n *Node) notifyUp(peer id.ID) {
	if n.listener.NeighborUp != nil {
		n.listener.NeighborUp(peer)
	}
}

// notifyDown fires the NeighborDown callback.
func (n *Node) notifyDown(peer id.ID, reason DownReason) {
	if n.listener.NeighborDown != nil {
		n.listener.NeighborDown(peer, reason)
	}
}
