package core

import (
	"errors"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/view"
)

// Stats counts protocol events on one node; useful for tests, ablations and
// operational metrics.
type Stats struct {
	JoinsHandled       uint64
	ForwardJoins       uint64
	ShufflesInitiated  uint64
	ShufflesAccepted   uint64
	ShufflesRelayed    uint64
	NeighborRequests   uint64
	NeighborAccepts    uint64
	NeighborRejects    uint64
	Promotions         uint64 // passive -> active moves completed
	Disconnects        uint64 // DISCONNECT notifications received
	PeerFailures       uint64 // active members detected as failed
	PassiveEvictions   uint64 // failed probes purging passive entries
	ActiveDemotions    uint64 // live members moved active -> passive
	IsolationRecovered uint64 // promotions that refilled an empty active view

	// Hardening counters: hostile or malformed shuffle traffic rejected at
	// the handler boundary (see sanitizePeerList, handleShuffleReply).
	ShuffleEntriesRejected    uint64 // self/nil/duplicate/overflow entries dropped
	UnsolicitedShuffleReplies uint64 // SHUFFLEREPLYs with no shuffle outstanding
}

// Node is one HyParView protocol instance. It is not safe for concurrent
// use: the simulator serializes deliveries, and the TCP agent runs each node
// in a single goroutine actor loop.
type Node struct {
	env  peer.Env
	self id.ID
	cfg  Config

	// The views are embedded by value: every per-delivery lookup reaches
	// the member arrays through one pointer (the Node itself) instead of
	// chasing a second allocation.
	active  view.View
	passive view.View

	// pendingNeighbor is the passive member we sent a NEIGHBOR request to
	// and whose reply is outstanding; Nil when no request is in flight. At
	// most one promotion attempt runs at a time.
	pendingNeighbor id.ID

	// repairTried tracks passive members already attempted during the
	// current repair episode, so a node whose views are saturated with
	// rejecting peers does not loop forever on the same candidate. It is a
	// small reused slice (the passive view holds ≈30 entries): a linear scan
	// beats a map at this size and resetting an episode is a length
	// truncation, not a re-allocation.
	repairTried []id.ID

	// lastShuffleSent remembers the identifiers included in our most recent
	// SHUFFLE request; the paper's integration rule prefers evicting these
	// when the reply does not fit in the passive view (§4.4).
	lastShuffleSent []id.ID

	// Reused scratch buffers for the allocation-free steady-state paths.
	// Their contents never leave the node inside a message: slices handed to
	// Send are frozen by the ownership rules on package peer, so anything a
	// message carries (shuffle lists, replies) is freshly allocated instead.
	gossipScratch []id.ID // GossipTargets result (owned, valid until next call)
	sentScratch   []id.ID // integrateShuffle's consumable sent-list copy
	pickScratch   []id.ID // pickRepairCandidate's shuffled passive snapshot
	rcvScratch    []id.ID // sanitizePeerList's filtered received-list copy

	listener Listener
	stats    Stats
}

var _ peer.Membership = (*Node)(nil)

// New constructs a HyParView node bound to env. Zero-valued Config fields are
// filled with the paper's defaults; an invalid configuration panics, as this
// is a programming error at construction time. With Config.ShuffleInterval
// set, the node registers its periodic round on the environment's scheduler
// here: the resulting TICKSHUFFLE is delivered to the top of the process
// stack, so broadcast and optimizer layers see it pass through before it
// lands in OnCycle.
func New(env peer.Env, cfg Config) *Node {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Node{
		env:  env,
		self: env.Self(),
		cfg:  cfg,
	}
	n.active.Init(cfg.ActiveSize)
	n.passive.Init(cfg.PassiveSize)
	if cfg.ShuffleInterval > 0 {
		env.Every(cfg.ShuffleInterval, msg.Message{
			Type: msg.Tick, Sender: n.self, Round: msg.TickShuffle,
		})
	}
	return n
}

// Join bootstraps this node into the overlay through contact (paper §4.2).
// The contact is optimistically added to the local active view; the JOIN
// message triggers the FORWARDJOIN random walks that advertise us. An error
// is returned when the contact is unreachable.
func (n *Node) Join(contact id.ID) error {
	if contact == n.self || contact.IsNil() {
		return nil
	}
	if err := n.env.Send(contact, msg.Message{
		Type:   msg.Join,
		Sender: n.self,
	}); err != nil {
		return err
	}
	n.addActive(contact)
	return nil
}

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Self returns the node's identifier.
func (n *Node) Self() id.ID { return n.self }

// Stats returns a copy of the node's protocol counters.
func (n *Node) Stats() Stats { return n.stats }

// Active returns a copy of the active view membership.
func (n *Node) Active() []id.ID { return n.active.Members() }

// Passive returns a copy of the passive view membership.
func (n *Node) Passive() []id.ID { return n.passive.Members() }

// ActiveContains reports whether peerID is in the active view.
func (n *Node) ActiveContains(peerID id.ID) bool { return n.active.Contains(peerID) }

// PassiveContains reports whether peerID is in the passive view.
func (n *Node) PassiveContains(peerID id.ID) bool { return n.passive.Contains(peerID) }

// Neighbors implements peer.Membership: HyParView's overlay neighbors are
// the active view.
func (n *Node) Neighbors() []id.ID { return n.active.Members() }

// NeighborVersion implements peer.NeighborVersioned: the active view's
// change counter. Layers mirroring the neighborhood (Plumtree) resync only
// when it moves.
func (n *Node) NeighborVersion() uint64 { return n.active.Version() }

// GossipTargets implements peer.Membership. HyParView floods: every active
// member except the link the message arrived on (paper §4.1), so the fanout
// argument is ignored. Per the interface contract the result is a reused
// scratch buffer, valid only until the next call — this runs once per
// delivered broadcast and must not allocate.
func (n *Node) GossipTargets(_ int, exclude id.ID) []id.ID {
	n.gossipScratch = n.active.AppendExcept(n.gossipScratch[:0], exclude)
	return n.gossipScratch
}

// OnPeerDown implements peer.Membership: a send to an active member failed,
// which is HyParView's failure detection signal. The member is purged (NOT
// demoted to the passive view — it is dead) and a replacement promotion
// starts immediately (paper §4.3).
func (n *Node) OnPeerDown(peerID id.ID) {
	if n.active.Remove(peerID) {
		n.env.Unwatch(peerID)
		n.stats.PeerFailures++
		n.notifyDown(peerID, DownFailed)
		n.startRepair()
	}
	// A dead node lingering in the passive view will be purged when a probe
	// fails; purging it now is free and keeps the reservoir accurate.
	if n.passive.Remove(peerID) {
		n.stats.PassiveEvictions++
	}
}

// OnCycle implements peer.Membership: the periodic (cyclic) part of the
// protocol. It initiates one shuffle (paper §4.4) and, if the active view is
// deficient and no promotion is in flight, one repair attempt.
func (n *Node) OnCycle() {
	n.initiateShuffle()
	// A promotion candidate that died before replying would otherwise wedge
	// the repair machinery; probe it once per cycle.
	if !n.pendingNeighbor.IsNil() {
		if err := n.env.Probe(n.pendingNeighbor); err != nil {
			if n.passive.Remove(n.pendingNeighbor) {
				n.stats.PassiveEvictions++
			}
			n.pendingNeighbor = id.Nil
		}
	}
	if !n.active.Full() && n.pendingNeighbor.IsNil() {
		// Each cycle starts a fresh repair episode: candidates that
		// rejected us earlier (their views were full) may have free slots
		// now, so the "repeat the whole procedure" of §4.3 must be able to
		// revisit them.
		n.resetRepairEpisode()
		n.startRepair()
	}
}

// Deliver implements peer.Membership: dispatches one protocol message.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.Join:
		n.handleJoin(m.Sender)
	case msg.ForwardJoin:
		n.handleForwardJoin(m)
	case msg.Disconnect:
		n.handleDisconnect(m.Sender)
	case msg.Neighbor:
		n.handleNeighbor(m.Sender, m.Priority)
	case msg.NeighborReply:
		n.handleNeighborReply(m.Sender, m.Accept)
	case msg.Shuffle:
		n.handleShuffle(m)
	case msg.ShuffleReply:
		n.handleShuffleReply(m)
	case msg.Tick:
		// The node's own scheduled periodic round (Config.ShuffleInterval);
		// ticks of other kinds belong to other layers and are ignored here,
		// the bottom of the stack.
		if m.Round == msg.TickShuffle && from == n.self {
			n.OnCycle()
		}
	default:
		// Unknown or non-membership message: ignore. The gossip layer
		// dispatches broadcast traffic before it reaches us.
		_ = from
	}
}

// --- Join mechanism (paper §4.2, Algorithm 1) -------------------------------

func (n *Node) handleJoin(newNode id.ID) {
	if newNode == n.self || newNode.IsNil() {
		return
	}
	n.stats.JoinsHandled++
	n.addActive(newNode)
	// Propagate the new node through ARWL-long random walks starting at
	// every other active member.
	for _, m := range n.active.Members() {
		if m == newNode {
			continue
		}
		n.sendOrFail(m, msg.Message{
			Type:    msg.ForwardJoin,
			Sender:  n.self,
			Subject: newNode,
			TTL:     n.cfg.ARWL,
		})
	}
}

func (n *Node) handleForwardJoin(m msg.Message) {
	newNode, sender := m.Subject, m.Sender
	if newNode == n.self || newNode.IsNil() {
		return
	}
	n.stats.ForwardJoins++
	// Accept into the active view when the walk expired or when we are
	// nearly isolated (paper: |active| == 1).
	if m.TTL == 0 || n.active.Len() <= 1 {
		n.connectTo(newNode)
		return
	}
	if m.TTL == n.cfg.PRWL {
		n.addPassive(newNode)
	}
	next, ok := n.active.RandomExcept(n.env.Rand(), sender)
	if !ok {
		// No forwarding option other than the sender: accept locally
		// rather than dropping the joiner on the floor.
		n.connectTo(newNode)
		return
	}
	fwd := m
	fwd.Sender = n.self
	fwd.TTL = m.TTL - 1
	if err := n.env.Send(next, fwd); err != nil {
		if errors.Is(err, peer.ErrPeerDown) {
			n.OnPeerDown(next)
		}
		n.connectTo(newNode)
	}
}

// connectTo adds newNode to the active view and notifies it with a
// high-priority NEIGHBOR request so that the link becomes symmetric. In a
// deployment this is the moment the TCP connection is established.
func (n *Node) connectTo(newNode id.ID) {
	if newNode == n.self || n.active.Contains(newNode) {
		return
	}
	if err := n.env.Send(newNode, msg.Message{
		Type:     msg.Neighbor,
		Sender:   n.self,
		Priority: msg.HighPriority,
	}); err != nil {
		// The joiner died before we could link to it; nothing to repair,
		// we never added it.
		return
	}
	n.addActive(newNode)
}

// --- Active view management (paper §4.3) ------------------------------------

// addActive inserts node into the active view, evicting a random member with
// a DISCONNECT notification when full (Algorithm 1, addNodeActiveView).
func (n *Node) addActive(node id.ID) {
	if node == n.self || node.IsNil() || n.active.Contains(node) {
		return
	}
	if n.active.Full() {
		n.dropRandomActive()
	}
	// Keep the views disjoint: promotion removes the id from passive.
	if n.passive.Remove(node) {
		n.stats.Promotions++
	}
	n.active.Add(node)
	// Model the open TCP connection: watch the peer so its failure is
	// detected even when we are not the one sending (a reset reaches both
	// ends of a connection).
	n.env.Watch(node)
	n.notifyUp(node)
	// The active view changed; stale repair bookkeeping no longer applies.
	n.resetRepairEpisode()
}

// dropRandomActive ejects a uniformly random active member, notifies it, and
// demotes it to the passive view (Algorithm 1, dropRandomElementFromActiveView).
func (n *Node) dropRandomActive() {
	victim, ok := n.active.RemoveRandom(n.env.Rand())
	if !ok {
		return
	}
	n.stats.ActiveDemotions++
	n.env.Unwatch(victim)
	n.notifyDown(victim, DownEvicted)
	// Ignore send errors: if the victim is dead we simply skip the
	// courtesy notification.
	_ = n.env.Send(victim, msg.Message{Type: msg.Disconnect, Sender: n.self})
	n.addPassive(victim)
}

func (n *Node) handleDisconnect(peerID id.ID) {
	if !n.active.Remove(peerID) {
		return
	}
	n.env.Unwatch(peerID)
	n.stats.Disconnects++
	n.notifyDown(peerID, DownDisconnected)
	// The peer is alive (it spoke to us); keep it as a backup (§4.5).
	n.addPassive(peerID)
	n.startRepair()
}

func (n *Node) handleNeighbor(from id.ID, prio msg.Priority) {
	n.stats.NeighborRequests++
	accept := false
	switch {
	case from == n.self || from.IsNil():
		// Malformed; reject.
	case n.active.Contains(from):
		accept = true
	case prio == msg.HighPriority && !n.cfg.DisablePriority:
		// High priority is always accepted, evicting if needed.
		n.addActive(from)
		accept = true
	case !n.active.Full():
		n.addActive(from)
		accept = true
	}
	if accept {
		n.stats.NeighborAccepts++
	} else {
		n.stats.NeighborRejects++
	}
	if err := n.env.Send(from, msg.Message{
		Type:   msg.NeighborReply,
		Sender: n.self,
		Accept: accept,
	}); errors.Is(err, peer.ErrPeerDown) {
		n.OnPeerDown(from)
	}
}

func (n *Node) handleNeighborReply(from id.ID, accept bool) {
	if from != n.pendingNeighbor {
		// Stale or duplicated reply; the view may have changed since.
		return
	}
	n.pendingNeighbor = id.Nil
	if accept {
		wasEmpty := n.active.Empty()
		// Paper §4.3: only on acceptance does the initiator move the peer
		// from the passive to the active view.
		n.addActive(from)
		if wasEmpty {
			n.stats.IsolationRecovered++
		}
		return
	}
	// Rejected: the peer stays in our passive view and we try another
	// candidate (paper §4.3).
	if !n.triedInEpisode(from) {
		n.repairTried = append(n.repairTried, from)
	}
	n.startRepair()
}

// triedInEpisode reports whether candidate was already attempted in the
// current repair episode (linear scan; the list is at most passive-view
// sized).
func (n *Node) triedInEpisode(candidate id.ID) bool {
	for _, t := range n.repairTried {
		if t == candidate {
			return true
		}
	}
	return false
}

// startRepair launches (or continues) a promotion attempt if the active view
// has a free slot and no NEIGHBOR request is outstanding.
func (n *Node) startRepair() {
	if n.active.Full() || !n.pendingNeighbor.IsNil() {
		return
	}
	for {
		candidate, ok := n.pickRepairCandidate()
		if !ok {
			return // passive view exhausted for this episode
		}
		// Paper §4.3: first establish a connection (TCP connect). A failed
		// probe purges the dead identifier from the passive view and the
		// procedure repeats with another candidate.
		if err := n.env.Probe(candidate); err != nil {
			n.passive.Remove(candidate)
			n.stats.PassiveEvictions++
			continue
		}
		prio := msg.LowPriority
		if n.active.Empty() && !n.cfg.DisablePriority {
			prio = msg.HighPriority
		}
		n.stats.NeighborRequests++
		if err := n.env.Send(candidate, msg.Message{
			Type:     msg.Neighbor,
			Sender:   n.self,
			Priority: prio,
		}); err != nil {
			if errors.Is(err, peer.ErrPeerDown) {
				n.passive.Remove(candidate)
				n.stats.PassiveEvictions++
				continue
			}
			// Overloaded, not dead: retry the episode next cycle.
			return
		}
		n.pendingNeighbor = candidate
		return
	}
}

// pickRepairCandidate selects a random passive member not yet tried in this
// repair episode.
func (n *Node) pickRepairCandidate() (id.ID, bool) {
	if n.passive.Empty() {
		return id.Nil, false
	}
	// The passive view is small (≈30): scanning a shuffled scratch copy is
	// cheap and guarantees termination of the episode.
	members := n.passive.AppendMembers(n.pickScratch[:0])
	n.pickScratch = members
	r := n.env.Rand()
	r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	for _, m := range members {
		if !n.triedInEpisode(m) {
			return m, true
		}
	}
	return id.Nil, false
}

// resetRepairEpisode clears per-episode rejection bookkeeping in place.
func (n *Node) resetRepairEpisode() {
	n.repairTried = n.repairTried[:0]
}

// --- Passive view management (paper §4.4) -----------------------------------

// addPassive inserts node into the passive view following Algorithm 1's
// addNodePassiveView: never the local node, never a current active member,
// evict a random entry when full.
func (n *Node) addPassive(node id.ID) {
	if node == n.self || node.IsNil() ||
		n.active.Contains(node) || n.passive.Contains(node) {
		return
	}
	if n.passive.Full() {
		n.passive.RemoveRandom(n.env.Rand())
	}
	n.passive.Add(node)
}

// initiateShuffle starts one shuffle exchange with a random active neighbor
// (paper §4.4): the exchange list holds our id, ka active members and kp
// passive members, random-walked over the overlay with ShuffleTTL.
func (n *Node) initiateShuffle() {
	target, ok := n.active.Random(n.env.Rand())
	if !ok {
		return
	}
	r := n.env.Rand()
	// The list rides inside the SHUFFLE message for up to ShuffleTTL hops,
	// so it must be freshly allocated and stay frozen (ownership rules on
	// package peer) — a reused buffer would be corrupted under the next
	// shuffle while the walk is still relaying this one. SampleInto keeps
	// the assembly itself scratch-based and single-allocation.
	list := make([]id.ID, 0, 1+n.cfg.ShuffleKa+n.cfg.ShuffleKp)
	list = append(list, n.self)
	list = n.active.SampleInto(r, n.cfg.ShuffleKa, list)
	list = n.passive.SampleInto(r, n.cfg.ShuffleKp, list)
	n.lastShuffleSent = list
	n.stats.ShufflesInitiated++
	if err := n.env.Send(target, msg.Message{
		Type:    msg.Shuffle,
		Sender:  n.self,
		Subject: n.self, // walk origin
		TTL:     n.cfg.ShuffleTTL,
		Nodes:   list,
	}); errors.Is(err, peer.ErrPeerDown) {
		n.OnPeerDown(target)
	}
}

func (n *Node) handleShuffle(m msg.Message) {
	origin, sender := m.Subject, m.Sender
	if origin == n.self {
		// Our own walk looped back to us; drop it.
		return
	}
	ttl := m.TTL
	if ttl > 0 {
		ttl--
	}
	// Keep walking while the TTL lives and we have someone other than the
	// sender to forward to (paper §4.4).
	if ttl > 0 && n.active.Len() > 1 {
		if next, ok := n.active.RandomExcept(n.env.Rand(), sender); ok && next != origin {
			fwd := m
			fwd.Sender = n.self
			fwd.TTL = ttl
			if err := n.env.Send(next, fwd); err == nil {
				n.stats.ShufflesRelayed++
				return
			} else if errors.Is(err, peer.ErrPeerDown) {
				n.OnPeerDown(next)
			}
		}
	}
	// Accept: reply with an equally sized random passive sample over a
	// temporary connection straight back to the walk origin. The exchange
	// list is sanitized first — a lying peer may have packed it with our own
	// id, duplicates or garbage, and sizing the reply by the raw list would
	// let an oversized lie drain our whole passive view back to the attacker.
	n.stats.ShufflesAccepted++
	received := n.sanitizePeerList(m.Nodes)
	reply := n.passive.Sample(n.env.Rand(), len(received))
	// Ignore a send failure: the origin died and there is nothing to repair
	// (it was very likely not our neighbor).
	_ = n.env.Send(origin, msg.Message{
		Type:   msg.ShuffleReply,
		Sender: n.self,
		Nodes:  reply,
	})
	n.integrateShuffle(received, reply)
}

func (n *Node) handleShuffleReply(m msg.Message) {
	if n.lastShuffleSent == nil {
		// No shuffle outstanding: an unsolicited, duplicated or reflected
		// reply (an attacker can forge a SHUFFLE whose walk origin is any
		// victim). Integrating it would hand an arbitrary sender control over
		// our passive view, so drop it at the boundary.
		n.stats.UnsolicitedShuffleReplies++
		return
	}
	sent := n.lastShuffleSent
	n.lastShuffleSent = nil
	n.integrateShuffle(n.sanitizePeerList(m.Nodes), sent)
}

// sanitizePeerList filters a shuffle exchange list at the handler boundary:
// our own id, nil ids and duplicates are dropped, and the list is capped at
// several times the largest exchange our own configuration would produce
// (remote configurations may legitimately differ, but a 16k-entry "exchange"
// is an attack, not a big node). The input is a frozen message slice, so the
// filtered copy lives in a reused scratch buffer, valid until the next call.
// Everything dropped here is counted in Stats.ShuffleEntriesRejected.
func (n *Node) sanitizePeerList(list []id.ID) []id.ID {
	max := 4 * (1 + n.cfg.ShuffleKa + n.cfg.ShuffleKp)
	if max < 16 {
		max = 16
	}
	out := n.rcvScratch[:0]
	for _, node := range list {
		if node == n.self || node.IsNil() || len(out) >= max {
			n.stats.ShuffleEntriesRejected++
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == node {
				dup = true
				break
			}
		}
		if dup {
			n.stats.ShuffleEntriesRejected++
			continue
		}
		out = append(out, node)
	}
	n.rcvScratch = out
	return out
}

// integrateShuffle merges received identifiers into the passive view. When
// the view is full, eviction prefers identifiers that were sent to the peer
// in the same exchange, then falls back to random eviction (paper §4.4).
// sentToPeer is consumed in slice order to keep the simulation deterministic.
// The consumable copy lives in a reused scratch buffer: it never leaves this
// call, while sentToPeer itself may be a frozen message slice.
func (n *Node) integrateShuffle(received, sentToPeer []id.ID) {
	n.sentScratch = append(n.sentScratch[:0], sentToPeer...)
	sent := n.sentScratch
	for _, node := range received {
		if node == n.self || node.IsNil() ||
			n.active.Contains(node) || n.passive.Contains(node) {
			continue
		}
		if n.passive.Full() {
			var evicted bool
			sent, evicted = n.evictSent(sent)
			if !evicted {
				n.passive.RemoveRandom(n.env.Rand())
			}
		}
		n.passive.Add(node)
	}
}

// evictSent removes one passive member that was sent to the shuffle peer,
// returning the remaining candidates and whether an eviction happened.
func (n *Node) evictSent(sent []id.ID) ([]id.ID, bool) {
	for i, s := range sent {
		if n.passive.Contains(s) {
			n.passive.Remove(s)
			return sent[i+1:], true
		}
	}
	return nil, false
}

// sendOrFail sends m to dst, invoking failure handling when the send proved
// the peer down. Other send errors (the simulator's queue-overflow
// degradation) just lose the message: treating them as failures would tear
// down healthy links en masse exactly when the network is overloaded.
func (n *Node) sendOrFail(dst id.ID, m msg.Message) {
	if err := n.env.Send(dst, m); errors.Is(err, peer.ErrPeerDown) {
		n.OnPeerDown(dst)
	}
}
