package core_test

import (
	"testing"

	"hyparview/internal/core"
	"hyparview/internal/graph"
	"hyparview/internal/id"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
)

// buildOverlay joins n HyParView nodes one by one through node 1 and returns
// the simulator plus the node handles.
func buildOverlay(t *testing.T, n int, seed uint64, cycles int) (*netsim.Sim, map[id.ID]*core.Node) {
	t.Helper()
	s := netsim.New(seed)
	nodes := make(map[id.ID]*core.Node, n)
	for i := 1; i <= n; i++ {
		nodeID := id.ID(i)
		var nd *core.Node
		s.Add(nodeID, func(env peer.Env) peer.Process {
			nd = core.New(env, core.Config{})
			return nd
		})
		nodes[nodeID] = nd
		if i > 1 {
			if err := nd.Join(1); err != nil {
				t.Fatalf("join %v: %v", nodeID, err)
			}
			s.Drain()
		}
	}
	s.RunCycles(cycles)
	return s, nodes
}

func snapshot(s *netsim.Sim, nodes map[id.ID]*core.Node) *graph.Snapshot {
	return graph.Build(s.AliveIDs(), func(n id.ID) []id.ID { return nodes[n].Active() })
}

func TestOverlayConnectedAfterJoins(t *testing.T) {
	s, nodes := buildOverlay(t, 300, 11, 0)
	snap := snapshot(s, nodes)
	if !snap.IsConnected() {
		t.Errorf("overlay disconnected right after joins: components %v",
			snap.ConnectedComponents()[:3])
	}
}

func TestOverlaySymmetricAfterStabilization(t *testing.T) {
	s, nodes := buildOverlay(t, 300, 12, 30)
	snap := snapshot(s, nodes)
	if sym := snap.SymmetryFraction(); sym < 0.999 {
		t.Errorf("active-view symmetry = %.4f, want 1.0 (paper §4.1)", sym)
	}
	if !snap.IsConnected() {
		t.Error("overlay disconnected after stabilization")
	}
}

func TestActiveViewsFillUp(t *testing.T) {
	s, nodes := buildOverlay(t, 300, 13, 30)
	full, total := 0, 0
	for _, nodeID := range s.AliveIDs() {
		total++
		if len(nodes[nodeID].Active()) >= nodes[nodeID].Config().ActiveSize-1 {
			full++
		}
	}
	if frac := float64(full) / float64(total); frac < 0.95 {
		t.Errorf("only %.2f%% of nodes have a (nearly) full active view", frac*100)
	}
}

func TestPassiveViewsPopulated(t *testing.T) {
	s, nodes := buildOverlay(t, 300, 14, 30)
	for _, nodeID := range s.AliveIDs()[:10] {
		if got := len(nodes[nodeID].Passive()); got < 10 {
			t.Errorf("node %v passive view only %d entries after stabilization", nodeID, got)
		}
	}
}

func TestViewsDisjointClusterWide(t *testing.T) {
	s, nodes := buildOverlay(t, 200, 15, 20)
	for _, nodeID := range s.AliveIDs() {
		nd := nodes[nodeID]
		for _, a := range nd.Active() {
			if nd.PassiveContains(a) {
				t.Fatalf("node %v holds %v in both views", nodeID, a)
			}
			if a == nodeID {
				t.Fatalf("node %v holds itself in active view", nodeID)
			}
		}
	}
}

func TestRecoveryAfterMassFailure(t *testing.T) {
	s, nodes := buildOverlay(t, 400, 16, 30)
	// Kill 60% of the population.
	alive := s.AliveIDs()
	r := s.Rand()
	r.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, victim := range alive[:240] {
		s.Fail(victim)
	}
	s.Drain() // deliver TCP resets, let repairs run
	// Give the reactive machinery two cycles, as the paper's Fig. 4 allows.
	s.RunCycles(2)
	snap := snapshot(s, nodes)
	if lcc := snap.LargestComponentFraction(); lcc < 0.99 {
		t.Errorf("largest component after 60%% failure + 2 cycles = %.3f, want ≥0.99", lcc)
	}
	// No live node should keep dead members in its active view.
	for _, nodeID := range s.AliveIDs() {
		for _, a := range nodes[nodeID].Active() {
			if !s.Alive(a) {
				t.Fatalf("node %v still lists dead %v in active view", nodeID, a)
			}
		}
	}
}

func TestContactNodeDeathDoesNotPartition(t *testing.T) {
	s, nodes := buildOverlay(t, 200, 17, 20)
	s.Fail(1) // the single contact everyone joined through
	s.Drain()
	s.RunCycles(1)
	snap := snapshot(s, nodes)
	if lcc := snap.LargestComponentFraction(); lcc < 0.99 {
		t.Errorf("overlay fell apart after contact death: lcc=%.3f", lcc)
	}
}

func TestInDegreeBalanced(t *testing.T) {
	s, nodes := buildOverlay(t, 500, 18, 30)
	snap := snapshot(s, nodes)
	dist := snap.InDegreeDistribution()
	// Paper Fig. 5: with symmetric views, almost all nodes have in-degree
	// equal to the active view size.
	atMax := dist[5]
	if frac := float64(atMax) / 500; frac < 0.8 {
		t.Errorf("only %.2f%% of nodes at in-degree 5; distribution %v", frac*100, dist)
	}
	for deg := range dist {
		if deg > 5 {
			t.Errorf("in-degree %d exceeds active view size", deg)
		}
	}
}

func TestDeterminismSameSeedSameOverlay(t *testing.T) {
	s1, nodes1 := buildOverlay(t, 150, 99, 10)
	s2, nodes2 := buildOverlay(t, 150, 99, 10)
	for _, nodeID := range s1.AliveIDs() {
		a1, a2 := nodes1[nodeID].Active(), nodes2[nodeID].Active()
		if len(a1) != len(a2) {
			t.Fatalf("node %v view sizes differ: %v vs %v", nodeID, a1, a2)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("node %v views diverged: %v vs %v", nodeID, a1, a2)
			}
		}
	}
	if s1.Stats() != s2.Stats() {
		t.Errorf("simulator stats diverged: %+v vs %+v", s1.Stats(), s2.Stats())
	}
	_ = nodes2
}

func TestDifferentSeedsDifferentOverlay(t *testing.T) {
	_, nodes1 := buildOverlay(t, 150, 1, 10)
	_, nodes2 := buildOverlay(t, 150, 2, 10)
	same := 0
	total := 0
	for nodeID, n1 := range nodes1 {
		a1, a2 := n1.Active(), nodes2[nodeID].Active()
		if len(a1) == len(a2) {
			eq := true
			for i := range a1 {
				if a1[i] != a2[i] {
					eq = false
					break
				}
			}
			if eq {
				same++
			}
		}
		total++
	}
	if same == total {
		t.Error("different seeds produced identical overlays")
	}
}
