package core

import "hyparview/internal/id"

// Surgical active-view hooks for overlay optimizers (internal/xbot).
//
// The X-BOT 4-node swap replaces one active link with another under its own
// coordinated handshake: it must be able to move a specific live peer out of
// the active view without the DISCONNECT courtesy message (the optimizer
// sends XBOTDISCONNECTWAIT instead) and without kicking the reactive repair
// machinery (the swap itself delivers the replacement link; if it aborts, the
// next cycle's repair refills the slot). These entry points expose exactly
// that, keeping all view bookkeeping — watch registration, listener
// callbacks, active/passive disjointness — inside the protocol core.

// PromoteActive moves peer into the active view (evicting a random member
// with a DISCONNECT if the view is full, exactly like any other admission)
// and reports whether peer is newly active. Promoting self, Nil or a current
// active member is a no-op returning false.
func (n *Node) PromoteActive(peer id.ID) bool {
	if peer == n.self || peer.IsNil() || n.active.Contains(peer) {
		return false
	}
	n.addActive(peer)
	return n.active.Contains(peer)
}

// DemoteActive moves peer from the active to the passive view without
// sending a DISCONNECT and without starting a repair promotion. It reports
// whether peer was an active member. The caller owns the wire-level
// notification of the demoted peer.
func (n *Node) DemoteActive(peer id.ID) bool {
	if !n.active.Remove(peer) {
		return false
	}
	n.env.Unwatch(peer)
	n.stats.ActiveDemotions++
	n.notifyDown(peer, DownEvicted)
	n.addPassive(peer)
	// The active view changed; stale repair bookkeeping no longer applies.
	n.resetRepairEpisode()
	return true
}

// ActiveFull reports whether the active view is at capacity. Optimizers only
// trade links on saturated views, so a swap can never eat into a view that
// reactive repair is still filling.
func (n *Node) ActiveFull() bool { return n.active.Full() }
