package core

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

func TestPromoteActiveAddsAndWatches(t *testing.T) {
	n, env := newTestNode(1)
	if !n.PromoteActive(2) {
		t.Fatal("PromoteActive(2) = false on empty view")
	}
	if !n.ActiveContains(2) {
		t.Fatal("peer not in active view after promotion")
	}
	if !env.watched[2] {
		t.Error("promoted peer not watched (no failure detection)")
	}
	if n.PromoteActive(2) {
		t.Error("re-promoting an active member reported a change")
	}
	if n.PromoteActive(1) || n.PromoteActive(id.Nil) {
		t.Error("self/nil promotion accepted")
	}
}

func TestPromoteActiveRemovesFromPassive(t *testing.T) {
	n, _ := newTestNode(1)
	n.addPassive(7)
	if !n.PromoteActive(7) {
		t.Fatal("promotion failed")
	}
	if n.PassiveContains(7) {
		t.Error("views not disjoint after promotion")
	}
}

func TestDemoteActiveMovesToPassiveSilently(t *testing.T) {
	n, env := newTestNode(1)
	n.PromoteActive(2)
	n.PromoteActive(3)
	env.take()
	if !n.DemoteActive(2) {
		t.Fatal("DemoteActive(2) = false for an active member")
	}
	if n.ActiveContains(2) {
		t.Error("peer still active after demotion")
	}
	if !n.PassiveContains(2) {
		t.Error("demoted peer not kept as a passive backup")
	}
	if env.watched[2] {
		t.Error("demoted peer still watched")
	}
	for _, s := range env.take() {
		if s.m.Type == msg.Disconnect {
			t.Error("DemoteActive sent a DISCONNECT; the optimizer owns the notification")
		}
		if s.m.Type == msg.Neighbor {
			t.Error("DemoteActive started a repair promotion")
		}
	}
	if n.DemoteActive(99) {
		t.Error("demoting a non-member reported a change")
	}
}

func TestDemoteActiveFiresListener(t *testing.T) {
	n, _ := newTestNode(1)
	var gotPeer id.ID
	var gotReason DownReason
	n.SetListener(Listener{NeighborDown: func(p id.ID, r DownReason) {
		gotPeer, gotReason = p, r
	}})
	n.PromoteActive(2)
	n.DemoteActive(2)
	if gotPeer != 2 || gotReason != DownEvicted {
		t.Errorf("listener got (%v, %v), want (2, evicted)", gotPeer, gotReason)
	}
}

func TestActiveFull(t *testing.T) {
	n, _ := newTestNode(1)
	if n.ActiveFull() {
		t.Fatal("empty view reported full")
	}
	for i := id.ID(2); !n.ActiveFull(); i++ {
		n.PromoteActive(i)
	}
	if got := len(n.Active()); got != n.Config().ActiveSize {
		t.Errorf("full at %d members, capacity %d", got, n.Config().ActiveSize)
	}
}
