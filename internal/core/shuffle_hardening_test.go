package core

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// The shuffle exchange is the one protocol path where a remote peer hands us
// an arbitrary identifier list, so it is the natural target for the
// adversarial suite's ShuffleLiar tamperer. These tests pin the handler
// boundary defences: sanitization (self/nil/duplicate/over-cap entries
// rejected and counted) and the unsolicited-reply drop.

func TestSanitizePeerListRejectsAndCounts(t *testing.T) {
	n, _ := newTestNode(1)
	cap := 4 * (1 + n.Config().ShuffleKa + n.Config().ShuffleKp)
	if cap < 16 {
		cap = 16
	}
	list := []id.ID{1, id.Nil, 7, 7, 8}
	for i := 0; len(list) < cap+5; i++ {
		list = append(list, id.ID(100+i))
	}
	out := n.sanitizePeerList(list)
	if len(out) != cap {
		t.Errorf("sanitized length = %d, want capped at %d", len(out), cap)
	}
	seen := make(map[id.ID]bool)
	for _, node := range out {
		if node == 1 || node.IsNil() {
			t.Errorf("self/nil id %v survived sanitization", node)
		}
		if seen[node] {
			t.Errorf("duplicate id %v survived sanitization", node)
		}
		seen[node] = true
	}
	// self + nil + one duplicate + the 2 entries past the cap.
	if got := n.Stats().ShuffleEntriesRejected; got != 5 {
		t.Errorf("ShuffleEntriesRejected = %d, want 5", got)
	}
}

func TestShuffleLiarListDoesNotPoisonViews(t *testing.T) {
	// A ShuffleLiar-style exchange: the receiver's own id, duplicates and a
	// flood of garbage. The poisoned entries must neither enter the views
	// nor size the reply (which would drain the passive view back to the
	// attacker).
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	for i := id.ID(30); i < 36; i++ {
		n.addPassive(i)
	}
	env.take()

	lies := []id.ID{1, 1, 1, id.Nil}
	for i := 0; i < 200; i++ {
		lies = append(lies, id.ID(1000+i))
	}
	n.Deliver(10, msg.Message{
		Type: msg.Shuffle, Sender: 10, Subject: 66, TTL: 1, Nodes: lies,
	})
	if n.PassiveContains(1) || n.ActiveContains(1) {
		t.Error("own id poisoned a view")
	}
	s, ok := env.lastOfType(msg.ShuffleReply)
	if !ok {
		t.Fatal("exhausted shuffle not answered")
	}
	max := 4 * (1 + n.Config().ShuffleKa + n.Config().ShuffleKp)
	if max < 16 {
		max = 16
	}
	if len(s.m.Nodes) > max {
		t.Errorf("reply sized by the raw lie: %d entries, want <= %d", len(s.m.Nodes), max)
	}
	if n.Stats().ShuffleEntriesRejected == 0 {
		t.Error("no lie entries counted as rejected")
	}
}

func TestUnsolicitedShuffleReplyDropped(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.take()

	// No shuffle outstanding: a forged or reflected reply must be dropped at
	// the boundary, not integrated.
	n.Deliver(66, msg.Message{
		Type: msg.ShuffleReply, Sender: 66, Nodes: []id.ID{70, 71, 72},
	})
	for _, poisoned := range []id.ID{70, 71, 72} {
		if n.PassiveContains(poisoned) {
			t.Errorf("unsolicited reply entry %v integrated", poisoned)
		}
	}
	if got := n.Stats().UnsolicitedShuffleReplies; got != 1 {
		t.Errorf("UnsolicitedShuffleReplies = %d, want 1", got)
	}

	// A second copy of a legitimate reply (duplicate fault) is unsolicited
	// too: lastShuffleSent is consumed by the first.
	n.OnCycle()
	env.take()
	reply := msg.Message{Type: msg.ShuffleReply, Sender: 10, Nodes: []id.ID{80}}
	n.Deliver(10, reply)
	n.Deliver(10, reply)
	if got := n.Stats().UnsolicitedShuffleReplies; got != 2 {
		t.Errorf("UnsolicitedShuffleReplies = %d after duplicated reply, want 2", got)
	}
}
