package core

import (
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeEnv is a scriptable peer.Env for message-by-message handler tests.
type fakeEnv struct {
	peertest.ManualScheduler
	self    id.ID
	rand    *rng.Rand
	down    map[id.ID]bool
	sent    []sentMsg
	watched map[id.ID]bool
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{
		self:    self,
		rand:    rng.New(uint64(self) + 1000),
		down:    make(map[id.ID]bool),
		watched: make(map[id.ID]bool),
	}
}

var _ peer.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Self() id.ID     { return e.self }
func (e *fakeEnv) Rand() *rng.Rand { return e.rand }

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

func (e *fakeEnv) Probe(dst id.ID) error {
	if e.down[dst] {
		return fmt.Errorf("probe: %w", peer.ErrPeerDown)
	}
	return nil
}

func (e *fakeEnv) Watch(dst id.ID)   { e.watched[dst] = true }
func (e *fakeEnv) Unwatch(dst id.ID) { delete(e.watched, dst) }

// take returns and clears the recorded sends.
func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

// lastOfType returns the most recent sent message of the given type.
func (e *fakeEnv) lastOfType(t msg.Type) (sentMsg, bool) {
	for i := len(e.sent) - 1; i >= 0; i-- {
		if e.sent[i].m.Type == t {
			return e.sent[i], true
		}
	}
	return sentMsg{}, false
}

func newTestNode(self id.ID) (*Node, *fakeEnv) {
	env := newFakeEnv(self)
	return New(env, Config{}), env
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Config
		wantErr bool
	}{
		{name: "defaults", give: DefaultConfig(), wantErr: false},
		{name: "zero active", give: Config{ActiveSize: 0, PassiveSize: 1, ARWL: 1, PRWL: 1, ShuffleTTL: 1}, wantErr: true},
		{name: "prwl exceeds arwl", give: Config{ActiveSize: 5, PassiveSize: 30, ARWL: 3, PRWL: 6, ShuffleTTL: 1}, wantErr: true},
		{name: "ka exceeds active", give: Config{ActiveSize: 2, PassiveSize: 30, ARWL: 6, PRWL: 3, ShuffleKa: 5, ShuffleKp: 4, ShuffleTTL: 1}, wantErr: true},
		{name: "kp exceeds passive", give: Config{ActiveSize: 5, PassiveSize: 3, ARWL: 6, PRWL: 3, ShuffleKa: 3, ShuffleKp: 9, ShuffleTTL: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWithDefaultsFillsZeroFields(t *testing.T) {
	got := Config{ActiveSize: 7}.WithDefaults()
	if got.ActiveSize != 7 {
		t.Error("override lost")
	}
	d := DefaultConfig()
	if got.PassiveSize != d.PassiveSize || got.ARWL != d.ARWL || got.PRWL != d.PRWL {
		t.Errorf("defaults not filled: %+v", got)
	}
	if got.ShuffleTTL != got.ARWL {
		t.Errorf("ShuffleTTL should default to ARWL, got %d", got.ShuffleTTL)
	}
}

func TestJoinAddsContactAndSendsJoin(t *testing.T) {
	n, env := newTestNode(1)
	if err := n.Join(2); err != nil {
		t.Fatal(err)
	}
	if !n.ActiveContains(2) {
		t.Error("contact not in active view")
	}
	if !env.watched[2] {
		t.Error("contact connection not watched")
	}
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.Join || sent[0].to != 2 {
		t.Errorf("sent = %+v, want one JOIN to n2", sent)
	}
}

func TestJoinToDeadContactErrors(t *testing.T) {
	n, env := newTestNode(1)
	env.down[2] = true
	if err := n.Join(2); err == nil {
		t.Error("join via dead contact succeeded")
	}
	if n.ActiveContains(2) {
		t.Error("dead contact entered active view")
	}
}

func TestJoinSelfIsNoop(t *testing.T) {
	n, env := newTestNode(1)
	if err := n.Join(1); err != nil {
		t.Fatal(err)
	}
	if len(env.take()) != 0 || len(n.Active()) != 0 {
		t.Error("self-join had effects")
	}
}

func TestHandleJoinFansOutForwardJoins(t *testing.T) {
	n, env := newTestNode(1)
	// Pre-populate the active view with 3 members.
	for _, m := range []id.ID{10, 11, 12} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()

	n.Deliver(99, msg.Message{Type: msg.Join, Sender: 99})
	if !n.ActiveContains(99) {
		t.Error("joiner not added to active view")
	}
	fwds := 0
	for _, s := range env.take() {
		if s.m.Type == msg.ForwardJoin {
			fwds++
			if s.m.Subject != 99 || s.m.TTL != n.Config().ARWL || s.to == 99 {
				t.Errorf("bad FORWARDJOIN: %+v", s)
			}
		}
	}
	if fwds != 3 {
		t.Errorf("FORWARDJOIN fan-out = %d, want 3", fwds)
	}
}

func TestForwardJoinTTLZeroAccepts(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()

	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: 0})
	if !n.ActiveContains(99) {
		t.Error("joiner not accepted at TTL 0")
	}
	// The new link must be announced to the joiner (symmetry).
	if s, ok := env.lastOfType(msg.Neighbor); !ok || s.to != 99 || s.m.Priority != msg.HighPriority {
		t.Errorf("no high-priority NEIGHBOR to joiner; sent=%+v", env.sent)
	}
}

func TestForwardJoinNearIsolationAccepts(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.take()
	// |active| == 1: must accept regardless of TTL (Algorithm 1).
	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: 6})
	if !n.ActiveContains(99) {
		t.Error("joiner not accepted despite near-isolation")
	}
}

func TestForwardJoinAtPRWLAddsPassive(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11, 12} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()

	prwl := n.Config().PRWL
	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: prwl})
	if !n.PassiveContains(99) {
		t.Error("joiner not added to passive view at TTL == PRWL")
	}
	if n.ActiveContains(99) {
		t.Error("joiner wrongly added to active view")
	}
	// Walk must continue, decremented, away from the sender.
	s, ok := env.lastOfType(msg.ForwardJoin)
	if !ok || s.to == 10 || s.m.TTL != prwl-1 || s.m.Sender != 1 {
		t.Errorf("walk not forwarded properly: %+v (ok=%v)", s, ok)
	}
}

func TestForwardJoinRelayAvoidsSender(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()
	for i := 0; i < 50; i++ {
		n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: 5})
		if s, ok := env.lastOfType(msg.ForwardJoin); ok && s.to == 10 {
			t.Fatal("FORWARDJOIN relayed back to its sender")
		}
		env.take()
		n.active.Remove(99) // in case it was accepted via dead-relay fallback
	}
}

func TestDisconnectDemotesToPassive(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()
	n.Deliver(10, msg.Message{Type: msg.Disconnect, Sender: 10})
	if n.ActiveContains(10) {
		t.Error("disconnected peer still in active view")
	}
	if !n.PassiveContains(10) {
		t.Error("disconnected (live) peer not demoted to passive view")
	}
	if env.watched[10] {
		t.Error("disconnected peer still watched")
	}
}

func TestNeighborHighPriorityAlwaysAccepted(t *testing.T) {
	n, env := newTestNode(1)
	// Fill the active view completely.
	for i := id.ID(10); i < id.ID(10+uint64(n.Config().ActiveSize)); i++ {
		n.Deliver(i, msg.Message{Type: msg.Neighbor, Sender: i, Priority: msg.HighPriority})
	}
	if len(n.Active()) != n.Config().ActiveSize {
		t.Fatalf("setup: active=%d", len(n.Active()))
	}
	env.take()

	n.Deliver(99, msg.Message{Type: msg.Neighbor, Sender: 99, Priority: msg.HighPriority})
	if !n.ActiveContains(99) {
		t.Error("high-priority NEIGHBOR rejected")
	}
	if len(n.Active()) != n.Config().ActiveSize {
		t.Error("active view overflowed")
	}
	// Someone must have been evicted with a DISCONNECT and the requester
	// must get an accepting reply.
	if _, ok := env.lastOfType(msg.Disconnect); !ok {
		t.Error("no DISCONNECT sent to evicted member")
	}
	if s, ok := env.lastOfType(msg.NeighborReply); !ok || !s.m.Accept || s.to != 99 {
		t.Errorf("no accepting NEIGHBORREPLY to requester: %+v", env.sent)
	}
}

func TestNeighborLowPriorityRejectedWhenFull(t *testing.T) {
	n, env := newTestNode(1)
	for i := id.ID(10); i < id.ID(10+uint64(n.Config().ActiveSize)); i++ {
		n.Deliver(i, msg.Message{Type: msg.Neighbor, Sender: i, Priority: msg.HighPriority})
	}
	env.take()
	n.Deliver(99, msg.Message{Type: msg.Neighbor, Sender: 99, Priority: msg.LowPriority})
	if n.ActiveContains(99) {
		t.Error("low-priority NEIGHBOR accepted into a full view")
	}
	if s, ok := env.lastOfType(msg.NeighborReply); !ok || s.m.Accept {
		t.Errorf("expected rejecting reply, got %+v", env.sent)
	}
}

func TestNeighborLowPriorityAcceptedWithFreeSlot(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(99, msg.Message{Type: msg.Neighbor, Sender: 99, Priority: msg.LowPriority})
	if !n.ActiveContains(99) {
		t.Error("low-priority NEIGHBOR rejected despite free slot")
	}
	if s, ok := env.lastOfType(msg.NeighborReply); !ok || !s.m.Accept {
		t.Errorf("expected accepting reply, got %+v", env.sent)
	}
}

func TestRepairAfterPeerDown(t *testing.T) {
	n, env := newTestNode(1)
	// Active: 10. Passive: 20 (dead). The failed probe must purge 20 and
	// leave no promotion pending.
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.addPassive(20)
	env.down[20] = true
	env.take()

	n.OnPeerDown(10)
	if n.ActiveContains(10) {
		t.Error("failed peer still in active view")
	}
	if n.PassiveContains(20) {
		t.Error("dead passive candidate not purged by failed probe")
	}
	if !n.pendingNeighbor.IsNil() {
		t.Errorf("pending = %v, want none (passive exhausted)", n.pendingNeighbor)
	}

	// A live candidate appears; the next cycle must promote it with HIGH
	// priority (active view is empty).
	n.addPassive(21)
	env.take()
	n.OnCycle()
	s, ok := env.lastOfType(msg.Neighbor)
	if !ok || s.to != 21 || s.m.Priority != msg.HighPriority {
		t.Fatalf("expected high-priority NEIGHBOR to n21, sent=%+v", env.sent)
	}
	// Acceptance completes the promotion.
	n.Deliver(21, msg.Message{Type: msg.NeighborReply, Sender: 21, Accept: true})
	if !n.ActiveContains(21) || n.PassiveContains(21) {
		t.Error("promotion did not move candidate from passive to active")
	}
	if n.Stats().IsolationRecovered != 1 {
		t.Errorf("IsolationRecovered = %d, want 1", n.Stats().IsolationRecovered)
	}
}

func TestRepairRetriesAfterRejection(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.Deliver(11, msg.Message{Type: msg.Neighbor, Sender: 11, Priority: msg.HighPriority})
	n.addPassive(20)
	n.addPassive(21)
	env.take()

	n.OnPeerDown(10) // one slot free, active not empty -> low priority
	first, ok := env.lastOfType(msg.Neighbor)
	if !ok || first.m.Priority != msg.LowPriority {
		t.Fatalf("expected low-priority NEIGHBOR, got %+v", env.sent)
	}
	env.take()

	// Rejection: the peer stays in the passive view and another candidate
	// is tried.
	n.Deliver(first.to, msg.Message{Type: msg.NeighborReply, Sender: first.to, Accept: false})
	if !n.PassiveContains(first.to) {
		t.Error("rejected candidate evicted from passive view")
	}
	second, ok := env.lastOfType(msg.Neighbor)
	if !ok {
		t.Fatal("no second NEIGHBOR attempt after rejection")
	}
	if second.to == first.to {
		t.Error("same candidate retried immediately after rejection")
	}
}

func TestStaleNeighborReplyIgnored(t *testing.T) {
	n, _ := newTestNode(1)
	n.Deliver(50, msg.Message{Type: msg.NeighborReply, Sender: 50, Accept: true})
	if n.ActiveContains(50) {
		t.Error("unsolicited NEIGHBORREPLY mutated the active view")
	}
}

func TestShuffleInitiation(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11, 12} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	for i := id.ID(30); i < 40; i++ {
		n.addPassive(i)
	}
	env.take()

	n.OnCycle()
	s, ok := env.lastOfType(msg.Shuffle)
	if !ok {
		t.Fatal("OnCycle did not initiate a shuffle")
	}
	cfg := n.Config()
	if s.m.TTL != cfg.ShuffleTTL || s.m.Subject != 1 {
		t.Errorf("bad shuffle envelope: %+v", s.m)
	}
	wantMax := 1 + cfg.ShuffleKa + cfg.ShuffleKp
	if len(s.m.Nodes) == 0 || len(s.m.Nodes) > wantMax {
		t.Errorf("shuffle list size = %d, want 1..%d", len(s.m.Nodes), wantMax)
	}
	if s.m.Nodes[0] != 1 {
		t.Error("shuffle list must start with the initiator's own id")
	}
}

func TestShuffleRelayedWhileTTLLives(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	env.take()
	n.Deliver(10, msg.Message{
		Type: msg.Shuffle, Sender: 10, Subject: 7, TTL: 5, Nodes: []id.ID{7, 8},
	})
	s, ok := env.lastOfType(msg.Shuffle)
	if !ok {
		t.Fatal("shuffle with live TTL not relayed")
	}
	if s.to == 10 || s.m.TTL != 4 || s.m.Sender != 1 {
		t.Errorf("bad relay: %+v", s)
	}
	if _, replied := env.lastOfType(msg.ShuffleReply); replied {
		t.Error("relay also replied")
	}
}

func TestShuffleAcceptedAtTTLExhaustion(t *testing.T) {
	n, env := newTestNode(1)
	for _, m := range []id.ID{10, 11} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	for i := id.ID(30); i < 36; i++ {
		n.addPassive(i)
	}
	env.take()

	n.Deliver(10, msg.Message{
		Type: msg.Shuffle, Sender: 10, Subject: 7, TTL: 1, Nodes: []id.ID{7, 8, 9},
	})
	s, ok := env.lastOfType(msg.ShuffleReply)
	if !ok {
		t.Fatal("exhausted shuffle not answered")
	}
	if s.to != 7 {
		t.Errorf("SHUFFLEREPLY sent to %v, want the origin n7", s.to)
	}
	if len(s.m.Nodes) != 3 {
		t.Errorf("reply size = %d, want equal to request size 3", len(s.m.Nodes))
	}
	// Received identifiers must have been integrated.
	if !n.PassiveContains(7) || !n.PassiveContains(8) || !n.PassiveContains(9) {
		t.Error("shuffle contents not integrated into passive view")
	}
}

func TestShuffleOwnWalkDropped(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.take()
	n.Deliver(10, msg.Message{
		Type: msg.Shuffle, Sender: 10, Subject: 1, TTL: 3, Nodes: []id.ID{1},
	})
	if len(env.take()) != 0 {
		t.Error("own shuffle walk was processed")
	}
}

func TestShuffleIntegrationSkipsKnownIDs(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.take()
	n.addPassive(30)
	n.integrateShuffle([]id.ID{1, 10, 30, 40}, nil)
	if n.PassiveContains(1) {
		t.Error("own id integrated")
	}
	if n.PassiveContains(10) {
		t.Error("active member duplicated into passive view")
	}
	if !n.PassiveContains(40) {
		t.Error("fresh id not integrated")
	}
}

func TestShuffleIntegrationPrefersEvictingSent(t *testing.T) {
	n, _ := newTestNode(1)
	cfg := n.Config()
	// Fill the passive view to capacity.
	for i := 0; i < cfg.PassiveSize; i++ {
		n.addPassive(id.ID(100 + i))
	}
	sent := []id.ID{100, 101, 102}
	n.integrateShuffle([]id.ID{200, 201, 202}, sent)
	for _, fresh := range []id.ID{200, 201, 202} {
		if !n.PassiveContains(fresh) {
			t.Errorf("fresh id %v not integrated", fresh)
		}
	}
	gone := 0
	for _, s := range sent {
		if !n.PassiveContains(s) {
			gone++
		}
	}
	if gone != 3 {
		t.Errorf("evicted %d sent ids, want 3", gone)
	}
	if got := len(n.Passive()); got != cfg.PassiveSize {
		t.Errorf("passive size = %d, want %d", got, cfg.PassiveSize)
	}
}

func TestOnCycleClearsDeadPendingNeighbor(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.Deliver(11, msg.Message{Type: msg.Neighbor, Sender: 11, Priority: msg.HighPriority})
	n.addPassive(20)
	env.take()
	n.OnPeerDown(10) // sends NEIGHBOR to 20, pending
	if n.pendingNeighbor != 20 {
		t.Fatalf("pending = %v, want n20", n.pendingNeighbor)
	}
	env.down[20] = true // candidate dies before replying
	n.OnCycle()
	if n.pendingNeighbor == 20 {
		t.Error("dead pending candidate not cleared")
	}
	if n.PassiveContains(20) {
		t.Error("dead pending candidate not purged from passive view")
	}
}

func TestGossipTargetsExcludesSender(t *testing.T) {
	n, _ := newTestNode(1)
	for _, m := range []id.ID{10, 11, 12} {
		n.Deliver(m, msg.Message{Type: msg.Neighbor, Sender: m, Priority: msg.HighPriority})
	}
	targets := n.GossipTargets(0, 11)
	if len(targets) != 2 {
		t.Fatalf("targets = %v, want 2 members", targets)
	}
	for _, tgt := range targets {
		if tgt == 11 {
			t.Error("sender included in flood targets")
		}
	}
}

func TestViewsStayDisjointAndBounded(t *testing.T) {
	// Fuzz the node with a pseudo-random message stream and check the §4
	// structural invariants after every delivery.
	n, env := newTestNode(1)
	r := rng.New(7)
	cfg := n.Config()
	types := []msg.Type{msg.Join, msg.ForwardJoin, msg.Disconnect, msg.Neighbor,
		msg.NeighborReply, msg.Shuffle, msg.ShuffleReply}
	for i := 0; i < 5000; i++ {
		from := id.ID(r.Intn(40) + 2)
		mt := types[r.Intn(len(types))]
		m := msg.Message{
			Type:     mt,
			Sender:   from,
			Subject:  id.ID(r.Intn(40) + 2),
			TTL:      uint8(r.Intn(8)),
			Priority: msg.Priority(r.Intn(2) + 1),
			Accept:   r.Bool(),
		}
		if mt == msg.Shuffle || mt == msg.ShuffleReply {
			for k := 0; k < r.Intn(8); k++ {
				m.Nodes = append(m.Nodes, id.ID(r.Intn(40)+2))
			}
		}
		// Occasionally mark peers dead/alive and fire failure/cycle events.
		if r.Intn(10) == 0 {
			env.down[id.ID(r.Intn(40)+2)] = r.Bool()
		}
		switch r.Intn(20) {
		case 0:
			n.OnPeerDown(id.ID(r.Intn(40) + 2))
		case 1:
			n.OnCycle()
		}
		n.Deliver(from, m)
		env.take()

		if got := len(n.Active()); got > cfg.ActiveSize {
			t.Fatalf("step %d: active view overflow: %d", i, got)
		}
		if got := len(n.Passive()); got > cfg.PassiveSize {
			t.Fatalf("step %d: passive view overflow: %d", i, got)
		}
		if n.ActiveContains(1) || n.PassiveContains(1) {
			t.Fatalf("step %d: self entered a view", i)
		}
		for _, a := range n.Active() {
			if n.PassiveContains(a) {
				t.Fatalf("step %d: %v in both views", i, a)
			}
		}
	}
}

func TestDisablePriorityRejectsEvenHigh(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{DisablePriority: true})
	for i := id.ID(10); i < id.ID(10+uint64(n.Config().ActiveSize)); i++ {
		n.Deliver(i, msg.Message{Type: msg.Neighbor, Sender: i, Priority: msg.HighPriority})
	}
	env.take()
	n.Deliver(99, msg.Message{Type: msg.Neighbor, Sender: 99, Priority: msg.HighPriority})
	if n.ActiveContains(99) {
		t.Error("priority mechanism disabled but high-priority request evicted a member")
	}
}

func TestStatsProgression(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Join, Sender: 10})
	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 20, TTL: 0})
	n.Deliver(10, msg.Message{Type: msg.Disconnect, Sender: 10})
	env.take()
	st := n.Stats()
	if st.JoinsHandled != 1 || st.ForwardJoins != 1 || st.Disconnects != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAccessors(t *testing.T) {
	n, _ := newTestNode(7)
	if n.Self() != 7 {
		t.Error("Self wrong")
	}
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	nb := n.Neighbors()
	if len(nb) != 1 || nb[0] != 10 {
		t.Errorf("Neighbors = %v", nb)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	env := newFakeEnv(1)
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(env, Config{ActiveSize: 2, PassiveSize: 30, ARWL: 2, PRWL: 6, ShuffleKa: 1, ShuffleKp: 1, ShuffleTTL: 1})
}

func TestForwardJoinDeadRelayFallsBackToAccept(t *testing.T) {
	n, env := newTestNode(1)
	// Two active members; the only relay option (not the sender) is dead.
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.Deliver(11, msg.Message{Type: msg.Neighbor, Sender: 11, Priority: msg.HighPriority})
	env.down[11] = true
	env.take()
	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: 5})
	if !n.ActiveContains(99) {
		t.Error("joiner dropped when the relay was dead; must be accepted locally")
	}
	if n.ActiveContains(11) {
		t.Error("dead relay not purged from active view")
	}
}

func TestJoinRelayFailureTriggersPeerDown(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.Deliver(11, msg.Message{Type: msg.Neighbor, Sender: 11, Priority: msg.HighPriority})
	env.down[11] = true
	env.take()
	// JOIN fans FORWARDJOIN to 10 and 11; the send to 11 fails and must
	// purge it reactively (sendOrFail path).
	n.Deliver(99, msg.Message{Type: msg.Join, Sender: 99})
	if n.ActiveContains(11) {
		t.Error("dead fan-out target kept in active view")
	}
	if n.Stats().PeerFailures == 0 {
		t.Error("PeerFailures not counted")
	}
}

func TestConnectToDeadJoinerHasNoEffect(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.down[99] = true
	env.take()
	n.Deliver(10, msg.Message{Type: msg.ForwardJoin, Sender: 10, Subject: 99, TTL: 0})
	if n.ActiveContains(99) {
		t.Error("dead joiner entered active view")
	}
}

func TestShuffleReplyToDeadOriginIgnored(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	env.down[7] = true // the walk origin is dead
	env.take()
	n.Deliver(10, msg.Message{
		Type: msg.Shuffle, Sender: 10, Subject: 7, TTL: 0, Nodes: []id.ID{7, 8},
	})
	// Exchange contents are still integrated locally even if the reply to
	// the origin could not be delivered.
	if !n.PassiveContains(8) {
		t.Error("shuffle contents lost when origin dead")
	}
}

func TestDisconnectFromUnknownPeerIgnored(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(50, msg.Message{Type: msg.Disconnect, Sender: 50})
	if len(env.take()) != 0 || n.Stats().Disconnects != 0 {
		t.Error("DISCONNECT from a non-neighbor had effects")
	}
}

func TestUnknownMessageTypeIgnored(t *testing.T) {
	n, env := newTestNode(1)
	n.Deliver(50, msg.Message{Type: msg.Gossip, Sender: 50}) // gossip layer's job
	n.Deliver(50, msg.Message{Type: msg.Type(200), Sender: 50})
	if len(env.take()) != 0 {
		t.Error("unknown message produced traffic")
	}
}

func TestRepairDoesNotRunWhenActiveFull(t *testing.T) {
	n, env := newTestNode(1)
	for i := id.ID(10); i < id.ID(10+uint64(n.Config().ActiveSize)); i++ {
		n.Deliver(i, msg.Message{Type: msg.Neighbor, Sender: i, Priority: msg.HighPriority})
	}
	n.addPassive(50)
	env.take()
	n.startRepair()
	if _, ok := env.lastOfType(msg.Neighbor); ok {
		t.Error("repair attempted with a full active view")
	}
}

func TestRepairEpisodeResetsEachCycle(t *testing.T) {
	// Regression: a node whose every passive candidate rejected once must
	// not give up forever — the next cycle retries (the candidate's view
	// may have freed up meanwhile).
	n, env := newTestNode(1)
	n.Deliver(10, msg.Message{Type: msg.Neighbor, Sender: 10, Priority: msg.HighPriority})
	n.Deliver(11, msg.Message{Type: msg.Neighbor, Sender: 11, Priority: msg.HighPriority})
	n.addPassive(20) // the only candidate
	env.take()

	n.OnPeerDown(10) // free slot -> low-priority NEIGHBOR to 20
	first, ok := env.lastOfType(msg.Neighbor)
	if !ok || first.to != 20 {
		t.Fatalf("setup: %+v", env.sent)
	}
	env.take()
	// 20 rejects; the episode exhausts (no other candidates).
	n.Deliver(20, msg.Message{Type: msg.NeighborReply, Sender: 20, Accept: false})
	if _, retried := env.lastOfType(msg.Neighbor); retried {
		t.Fatal("exhausted episode still retried within the same event")
	}
	env.take()
	// Next cycle: 20 must be asked again.
	n.OnCycle()
	if s, ok := env.lastOfType(msg.Neighbor); !ok || s.to != 20 {
		t.Errorf("candidate not retried on the next cycle: %+v", env.sent)
	}
}
