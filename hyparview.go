// Package hyparview is a Go implementation of the HyParView membership
// protocol for reliable gossip-based broadcast (Leitão, Pereira, Rodrigues —
// DSN 2007 / DI-FCUL TR-07-13), together with everything its evaluation
// needs: a deterministic protocol simulator, the Cyclon, CyclonAcked and
// SCAMP baselines, a flood/fanout gossip broadcast layer, overlay graph
// analysis, and a real TCP transport.
//
// # Quick start (real TCP)
//
//	a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
//		CyclePeriod: time.Second,
//		OnDeliver:   func(p []byte) { fmt.Printf("got %q\n", p) },
//	})
//	// ... a.Join(contactAddr), a.Broadcast([]byte("hello")), a.Close()
//
// # Quick start (simulation)
//
//	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{N: 1000})
//	c.Stabilize(50)
//	fmt.Println(c.Broadcast()) // => 1 (reliability of one flood)
//
// The facade below re-exports the library's building blocks; the
// implementation lives in internal/ packages (one per subsystem — see
// DESIGN.md for the inventory).
package hyparview

import (
	"hyparview/internal/core"
	"hyparview/internal/cyclon"
	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/scamp"
	"hyparview/internal/sim"
	"hyparview/internal/transport"
)

// ID identifies a node in the overlay.
type ID = id.ID

// FromAddr derives a stable node identifier from a network address.
func FromAddr(addr string) ID { return id.FromAddr(addr) }

// Config carries the HyParView protocol parameters (paper §5.1 defaults via
// DefaultConfig).
type Config = core.Config

// DefaultConfig returns the paper's HyParView parameters: active view 5,
// passive view 30, ARWL 6, PRWL 3, shuffle ka=3 kp=4.
func DefaultConfig() Config { return core.DefaultConfig() }

// Listener receives active-view change notifications (NeighborUp /
// NeighborDown) from a HyParView node.
type Listener = core.Listener

// DownReason explains why a neighbor left the active view.
type DownReason = core.DownReason

// Neighbor-down reasons.
const (
	DownFailed       = core.DownFailed
	DownDisconnected = core.DownDisconnected
	DownEvicted      = core.DownEvicted
)

// CyclonConfig carries the Cyclon baseline's parameters.
type CyclonConfig = cyclon.Config

// ScampConfig carries the SCAMP baseline's parameters.
type ScampConfig = scamp.Config

// Agent is a HyParView node running over real TCP: an actor-style wrapper
// around the protocol core, the flood broadcast layer and the framed TCP
// transport.
type Agent = transport.Agent

// AgentConfig configures a TCP agent.
type AgentConfig = transport.AgentConfig

// TransportConfig tunes the TCP transport's timeouts.
type TransportConfig = transport.Config

// NewAgent starts a HyParView node listening on listenAddr.
func NewAgent(listenAddr string, cfg AgentConfig) (*Agent, error) {
	return transport.NewAgent(listenAddr, cfg)
}

// Protocol selects a membership protocol for simulated clusters.
type Protocol = sim.Protocol

// The four protocols of the paper's evaluation.
const (
	ProtoHyParView   = sim.HyParView
	ProtoCyclon      = sim.Cyclon
	ProtoCyclonAcked = sim.CyclonAcked
	ProtoScamp       = sim.Scamp
)

// Cluster is a simulated population of nodes under one membership protocol,
// following the paper's §5 methodology (one-by-one joins, stabilization
// cycles, random mass failures, broadcast bursts).
type Cluster = sim.Cluster

// ClusterOptions configures a simulated cluster.
type ClusterOptions = sim.Options

// NewCluster builds a simulated cluster of opts.N nodes running proto.
func NewCluster(proto Protocol, opts ClusterOptions) *Cluster {
	return sim.NewCluster(proto, opts)
}

// GossipMode selects the broadcast forwarding strategy.
type GossipMode = gossip.Mode

// Broadcast forwarding modes.
const (
	// GossipFlood forwards to all overlay neighbors except the sender
	// (HyParView's deterministic dissemination).
	GossipFlood = gossip.Flood
	// GossipFanout forwards to a fixed number of random view members.
	GossipFanout = gossip.Fanout
)
