// Package hyparview is a Go implementation of the HyParView membership
// protocol for reliable gossip-based broadcast (Leitão, Pereira, Rodrigues —
// DSN 2007 / DI-FCUL TR-07-13), together with everything its evaluation
// needs: a deterministic protocol simulator, the Cyclon, CyclonAcked and
// SCAMP baselines, a flood/fanout gossip broadcast layer, the authors'
// companion Plumtree broadcast trees (SRDS 2007), overlay graph analysis,
// and a real TCP transport.
//
// # Quick start (real TCP, full stack)
//
// A TCP agent hosts the whole protocol stack: HyParView membership, flood or
// Plumtree broadcast, and optionally the X-BOT optimizer driven by live
// PING/PONG RTT measurements instead of the simulator's latency model:
//
//	a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
//		CyclePeriod: time.Second,
//		Broadcast:   hyparview.AgentBroadcastPlumtree, // default: flood
//		Optimize:    true,                             // X-BOT over live RTTs
//		OnDeliver:   func(p []byte) { fmt.Printf("got %q\n", p) },
//	})
//	// ... a.Join(contactAddr), a.Broadcast([]byte("hello")), a.Close()
//
// # Quick start (simulation, flood broadcast)
//
//	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{N: 1000})
//	c.Stabilize(50)
//	fmt.Println(c.Broadcast()) // => 1 (reliability of one flood)
//
// # Quick start (simulation, Plumtree broadcast trees)
//
// Plumtree replaces flooding's redundant payload pushes with lazy IHAVE
// announcements and a self-healing spanning tree, cutting the relative
// message redundancy (RMR) to nearly zero at equal reliability:
//
//	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
//		N:         1000,
//		Broadcast: hyparview.BroadcastPlumtree,
//	})
//	c.Stabilize(50)
//	c.BroadcastBurst(20)             // let pruning carve the broadcast tree
//	fmt.Println(c.MeasureBurst(100)) // reliability 1.0 at RMR ≈ 0
//
// # Quick start (latency-aware optimization: X-BOT)
//
// A LatencyModel runs the simulation in event-driven virtual time with
// non-uniform link latencies; the X-BOT optimizer (the authors' SRDS 2009
// follow-up) then continuously rewires HyParView's active views toward
// low-cost links via 4-node coordinated swaps, without changing node
// degrees, symmetry or connectivity. The model doubles as the optimizer's
// CostOracle — deployments would plug RTT estimates instead:
//
//	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
//		N:            1000,
//		LatencyModel: hyparview.NewEuclideanLatency(1),
//		Optimizer:    hyparview.OptimizerXBot,
//	})
//	c.Stabilize(50)                   // optimization runs with the cycles
//	fmt.Println(c.MeanActiveLinkCost()) // ≈ 70% below the oblivious overlay
//	fmt.Println(c.MeasureBurst(20))   // MeanMaxLatency: virtual-time delivery
//
// The facade below re-exports the library's building blocks; the
// implementation lives in internal/ packages (one per subsystem — see
// DESIGN.md for the inventory).
package hyparview

import (
	"hyparview/internal/core"
	"hyparview/internal/cyclon"
	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/netsim"
	"hyparview/internal/plumtree"
	"hyparview/internal/pubsub"
	"hyparview/internal/scamp"
	"hyparview/internal/sim"
	"hyparview/internal/transport"
	"hyparview/internal/xbot"
)

// ID identifies a node in the overlay.
type ID = id.ID

// FromAddr derives a stable node identifier from a network address.
func FromAddr(addr string) ID { return id.FromAddr(addr) }

// Config carries the HyParView protocol parameters (paper §5.1 defaults via
// DefaultConfig).
type Config = core.Config

// DefaultConfig returns the paper's HyParView parameters: active view 5,
// passive view 30, ARWL 6, PRWL 3, shuffle ka=3 kp=4.
func DefaultConfig() Config { return core.DefaultConfig() }

// Listener receives active-view change notifications (NeighborUp /
// NeighborDown) from a HyParView node.
type Listener = core.Listener

// DownReason explains why a neighbor left the active view.
type DownReason = core.DownReason

// Neighbor-down reasons.
const (
	DownFailed       = core.DownFailed
	DownDisconnected = core.DownDisconnected
	DownEvicted      = core.DownEvicted
)

// CyclonConfig carries the Cyclon baseline's parameters.
type CyclonConfig = cyclon.Config

// ScampConfig carries the SCAMP baseline's parameters.
type ScampConfig = scamp.Config

// Agent is a HyParView node running over real TCP: an actor-style wrapper
// around the protocol core, the selected broadcast layer (flood or
// Plumtree), the optional X-BOT optimizer with its live RTT oracle, and the
// framed TCP transport.
type Agent = transport.Agent

// AgentConfig configures a TCP agent. Broadcast selects the broadcast layer,
// Optimize enables RTT-driven X-BOT overlay optimization, and SuspectAfter
// arms half-open neighbor detection: peers whose RTT probes go unanswered
// for that many consecutive rounds are expelled without waiting for a TCP
// write timeout.
type AgentConfig = transport.AgentConfig

// AgentBroadcastMode selects a TCP agent's broadcast layer.
type AgentBroadcastMode = transport.BroadcastMode

// TCP agent broadcast layers.
const (
	// AgentBroadcastFlood forwards payloads on every active-view link (the
	// paper's dissemination, the agent's default).
	AgentBroadcastFlood = transport.BroadcastFlood
	// AgentBroadcastPlumtree runs Plumtree epidemic broadcast trees with
	// real-clock missing-message repair timers.
	AgentBroadcastPlumtree = transport.BroadcastPlumtree
)

// AgentBroadcastStats is a snapshot of a TCP agent's broadcast-layer payload
// accounting (deliveries, duplicates, forwards, failed sends).
type AgentBroadcastStats = transport.BroadcastStats

// TransportConfig tunes the TCP transport: dial/write timeouts, queue and
// batch sizing, and the connection lifecycle — redial backoff (RedialBase/
// RedialCap/RedialBudget), the suspicion window bounding how long a watched
// outage may last before the failure detector fires, the graceful-drain
// deadline for deliberate teardowns, and the socket-level fault-injection
// seam (Dial/WrapConn, see internal/faults.Sockets).
type TransportConfig = transport.Config

// TransportStats is a snapshot of a TCP agent's data-plane and lifecycle
// counters: frames and vectored writes (their ratio is frames-per-syscall on
// the send path), kernel reads, overflow sheds, fault-injection drops, and
// the connection lifecycle manager's accounting — backoff redials, dial
// races lost, half-open links condemned by suspicion, and graceful drains.
type TransportStats = transport.Stats

// NewAgent starts a HyParView node listening on listenAddr.
func NewAgent(listenAddr string, cfg AgentConfig) (*Agent, error) {
	return transport.NewAgent(listenAddr, cfg)
}

// Protocol selects a membership protocol for simulated clusters.
type Protocol = sim.Protocol

// The four protocols of the paper's evaluation.
const (
	ProtoHyParView   = sim.HyParView
	ProtoCyclon      = sim.Cyclon
	ProtoCyclonAcked = sim.CyclonAcked
	ProtoScamp       = sim.Scamp
)

// Cluster is a simulated population of nodes under one membership protocol,
// following the paper's §5 methodology (one-by-one joins, stabilization
// cycles, random mass failures, broadcast bursts).
type Cluster = sim.Cluster

// ClusterOptions configures a simulated cluster.
type ClusterOptions = sim.Options

// NewCluster builds a simulated cluster of opts.N nodes running proto.
func NewCluster(proto Protocol, opts ClusterOptions) *Cluster {
	return sim.NewCluster(proto, opts)
}

// GossipMode selects the broadcast forwarding strategy.
type GossipMode = gossip.Mode

// Broadcast forwarding modes.
const (
	// GossipFlood forwards to all overlay neighbors except the sender
	// (HyParView's deterministic dissemination).
	GossipFlood = gossip.Flood
	// GossipFanout forwards to a fixed number of random view members.
	GossipFanout = gossip.Fanout
)

// BroadcastProtocol selects a simulated cluster's broadcast layer.
type BroadcastProtocol = sim.BroadcastProtocol

// The two broadcast layers.
const (
	// BroadcastGossip is the paper's evaluation broadcast: flooding for
	// HyParView, random fanout for the peer-sampling protocols.
	BroadcastGossip = sim.BroadcastGossip
	// BroadcastPlumtree runs the Plumtree epidemic broadcast tree protocol
	// (eager push on tree links, lazy IHAVE announcements elsewhere, GRAFT/
	// PRUNE tree repair) over the membership protocol.
	BroadcastPlumtree = sim.BroadcastPlumtree
)

// PlumtreeConfig carries the Plumtree broadcast layer's parameters.
type PlumtreeConfig = plumtree.Config

// Broadcaster is the contract both broadcast layers satisfy (flood/fanout
// gossip and Plumtree); Cluster.Gossiper returns one.
type Broadcaster = gossip.Broadcaster

// PubSubConfig configures the topic pub/sub router that wraps either
// broadcast layer with per-topic subscription dispatch and publish-side
// batching. Set it on AgentConfig.PubSub (TCP) or ClusterOptions.PubSub
// (simulation); the same router code runs unmodified on both runtimes.
type PubSubConfig = pubsub.Config

// PubSubHandler receives topic deliveries: topic, payload, and the gossip
// hop count at delivery time.
type PubSubHandler = pubsub.Handler

// PubSubStats is a cumulative snapshot of a router's publish, batching and
// delivery accounting.
type PubSubStats = pubsub.Stats

// PubSubRouter is the per-node topic pub/sub layer; Cluster.Router returns a
// simulated node's instance, TCP agents expose theirs through
// Agent.Subscribe / Agent.Publish / Agent.PubSubStats.
type PubSubRouter = pubsub.Router

// ErrNoPubSub is returned by an Agent's pub/sub methods when the agent was
// built without AgentConfig.PubSub.
var ErrNoPubSub = transport.ErrNoPubSub

// LatencyModel describes per-link latencies for event-driven (virtual-time)
// simulation: install one via ClusterOptions.LatencyModel to run any
// experiment under non-uniform latency. A model also serves as the cost
// oracle for overlay optimizers (Cost is Delay with jitter stripped).
type LatencyModel = netsim.LatencyModel

// NewUniformLatency returns the control-arm model: every link costs the
// same, so an optimizer must measure zero improvement under it.
func NewUniformLatency() LatencyModel { return netsim.NewUniform() }

// NewEuclideanLatency places nodes at hashed virtual coordinates on the unit
// square and charges the scaled Euclidean distance per link (Vivaldi-style
// network coordinates).
func NewEuclideanLatency(seed uint64) LatencyModel { return netsim.NewEuclidean(seed) }

// NewTransitStubLatency models the classic two-tier internet topology: cheap
// intra-cluster links, expensive transit-backbone crossings.
func NewTransitStubLatency(seed uint64, clusters int) LatencyModel {
	return netsim.NewTransitStub(seed, clusters)
}

// Optimizer selects an overlay optimization layer for simulated clusters.
type Optimizer = sim.Optimizer

// The optimization layers.
const (
	// OptimizerNone leaves the overlay oblivious, as the paper builds it.
	OptimizerNone = sim.OptimizerNone
	// OptimizerXBot runs the X-BOT 4-node coordinated swap protocol (the
	// authors' SRDS 2009 follow-up) on every HyParView node, continuously
	// rewiring active views toward low-cost links at unchanged degree,
	// symmetry and connectivity.
	OptimizerXBot = sim.OptimizerXBot
)

// XBotConfig carries the X-BOT optimizer's parameters (probe rate, protected
// unbiased-link floor, handshake timeout).
type XBotConfig = xbot.Config

// CostOracle measures link costs for the X-BOT optimizer. Implementations
// must be symmetric. By default a simulated cluster uses its LatencyModel;
// set ClusterOptions.Oracle to optimize against a different cost surface
// (deployments would plug RTT estimates).
type CostOracle = xbot.Oracle
