// Quickstart: build a simulated HyParView overlay, inspect a node's two
// views, and flood a broadcast over the active-view graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hyparview"
)

func main() {
	// 64 nodes join one by one through a single contact (the paper's §5
	// methodology), then run 20 membership cycles so shuffles populate the
	// passive views.
	cluster := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N:    64,
		Seed: 2024,
	})
	cluster.Stabilize(20)

	// Every node keeps a tiny symmetric active view (fanout+1 = 5) and a
	// larger passive view of backups (30).
	node := cluster.IDs()[7]
	mem := cluster.Membership(node)
	fmt.Printf("node %v active view:  %v\n", node, mem.Neighbors())

	snap := cluster.Snapshot()
	fmt.Printf("overlay connected:   %v\n", snap.IsConnected())
	fmt.Printf("overlay symmetric:   %.0f%%\n", snap.SymmetryFraction()*100)

	// Broadcast = deterministic flood over the active views. On a connected
	// overlay reliability is 1.0: every live node delivers.
	rel := cluster.Broadcast()
	fmt.Printf("broadcast reliability: %.4f\n", rel)

	// The overlay shrugs off failures: kill a third of the cluster and
	// broadcast again. TCP resets trigger passive-view promotions.
	killed := cluster.FailFraction(1.0 / 3)
	fmt.Printf("killed %d nodes\n", killed)
	fmt.Printf("post-failure reliability: %.4f\n", cluster.Broadcast())
}
