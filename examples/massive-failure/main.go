// Massive-failure demo: the paper's headline scenario (§5.2-5.3). Build a
// 2,000-node overlay per protocol, kill 80% of the nodes simultaneously
// (worm / datacenter-outage scale), and watch per-message reliability as
// broadcasts flow — no membership cycles allowed, reactive repair only.
//
//	go run ./examples/massive-failure
package main

import (
	"fmt"

	"hyparview"
	"hyparview/internal/metrics"
)

func main() {
	const (
		n       = 2000
		failPct = 0.80
		burst   = 40
	)
	fmt.Printf("population %d, killing %.0f%%, then %d broadcasts back-to-back\n\n",
		n, failPct*100, burst)

	protocols := []hyparview.Protocol{
		hyparview.ProtoHyParView,
		hyparview.ProtoCyclonAcked,
		hyparview.ProtoCyclon,
		hyparview.ProtoScamp,
	}
	for _, proto := range protocols {
		cluster := hyparview.NewCluster(proto, hyparview.ClusterOptions{N: n, Seed: 7})
		cluster.Stabilize(50)
		cluster.FailFraction(failPct)

		rels := cluster.BroadcastBurst(burst)
		fmt.Printf("%-12s first=%.3f msg10=%.3f msg25=%.3f last=%.3f mean=%.3f\n",
			proto, rels[0], rels[9], rels[24], rels[burst-1], metrics.Mean(rels))
	}

	fmt.Println("\nHyParView recovers within the first broadcasts: every flood tests")
	fmt.Println("all active-view links, failures promote passive-view backups, and")
	fmt.Println("the symmetric overlay keeps every reachable node also able to receive.")
}
