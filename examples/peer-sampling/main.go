// Peer-sampling demo: membership protocols are "peer sampling services"
// (paper §1, citing Jelasity et al.): applications draw gossip targets from
// the partial views as if they were uniform samples of the whole system.
// This example quantifies the quality of that sample for HyParView's
// overlay: in-degree balance (is every node equally likely to be picked?)
// and view accuracy under churn.
//
//	go run ./examples/peer-sampling
package main

import (
	"fmt"

	"hyparview"
	"hyparview/internal/metrics"
)

func main() {
	cluster := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N:    1500,
		Seed: 99,
	})
	cluster.Stabilize(50)

	// 1. In-degree balance: the paper's Fig. 5 argument. Under symmetric
	// views every node is referenced by (almost exactly) ActiveSize peers,
	// so each node is a gossip target with near-identical probability.
	snap := cluster.Snapshot()
	dist := metrics.IntHistogram(snap.InDegreeDistribution())
	fmt.Println("active-view in-degree distribution (value:nodes):")
	fmt.Printf("  %s\n", dist.String())
	fmt.Printf("  mean in-degree %.3f\n\n", dist.Mean())

	// 2. Sampling through the views: draw many "random peer" requests the
	// way an application would (uniform choice from the local active view)
	// and measure how evenly the selections cover the population.
	counts := make(map[hyparview.ID]int)
	r := cluster.Sim.Rand()
	ids := cluster.IDs()
	const draws = 60000
	for i := 0; i < draws; i++ {
		self := ids[r.Intn(len(ids))]
		view := cluster.Membership(self).Neighbors()
		if len(view) == 0 {
			continue
		}
		counts[view[r.Intn(len(view))]]++
	}
	samples := make([]float64, 0, len(ids))
	for _, n := range ids {
		samples = append(samples, float64(counts[n]))
	}
	s := metrics.Summarize(samples)
	fmt.Printf("peer-sampling coverage over %d draws:\n", draws)
	fmt.Printf("  per-node selections: %s\n", s.String())
	fmt.Printf("  p5=%.0f p95=%.0f (uniform would be %.1f)\n\n",
		metrics.Percentile(samples, 5), metrics.Percentile(samples, 95),
		float64(draws)/float64(len(ids)))

	// 3. Accuracy under churn: kill 40%, let the reactive machinery run,
	// and check that surviving views point only at live peers.
	cluster.FailFraction(0.4)
	cluster.Sim.Drain()
	fmt.Printf("view accuracy after 40%% churn + reactive repair: %.4f\n", cluster.Accuracy())
}
