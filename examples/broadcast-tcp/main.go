// Broadcast over real TCP: a loopback cluster of HyParView agents — the
// deployment path the paper left as future work (§6). Each agent is a real
// network node: framed TCP transport, connection-cache failure detection,
// periodic shuffles.
//
// The program runs the same broadcast workload twice — once flooding every
// active-view link, once over Plumtree broadcast trees with the X-BOT
// RTT-driven optimizer — and compares their payload redundancy, then
// demonstrates failure recovery on the tree-based stack. A final arm layers
// the topic pub/sub router over Plumtree: a hot-topic burst from one producer
// is batched into a handful of wire frames yet delivered to every subscriber.
//
//	go run ./examples/broadcast-tcp
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"hyparview"
)

const (
	n     = 12
	burst = 10
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%d agents on loopback, %d-message burst per arm\n\n", n, burst)
	if err := arm(hyparview.AgentBroadcastFlood, false); err != nil {
		return err
	}
	if err := arm(hyparview.AgentBroadcastPlumtree, true); err != nil {
		return err
	}
	return pubsubArm()
}

// arm builds one overlay with the given stack, measures a broadcast burst,
// and — on the tree-based stack — kills a third of the agents to show the
// TCP failure detector driving repair.
func arm(mode hyparview.AgentBroadcastMode, optimize bool) error {
	var delivered atomic.Int64
	agents := make([]*hyparview.Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
			CyclePeriod:   200 * time.Millisecond,
			Broadcast:     mode,
			Optimize:      optimize,
			PlumtreeTimer: 50 * time.Millisecond,
			OnDeliver:     func(p []byte) { delivered.Add(1) },
		})
		if err != nil {
			return err
		}
		agents = append(agents, a)
	}

	// Join everyone through agent 0 (the contact node).
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // let a couple of shuffle cycles run

	// One delivered message at a time: on the tree arm, each redundant copy
	// earns a PRUNE and the eager links converge to a spanning tree.
	for i := 0; i < burst; i++ {
		want := delivered.Load() + n
		if err := agents[i%n].Broadcast([]byte("hello, overlay")); err != nil {
			return err
		}
		waitFor(&delivered, want, 5*time.Second)
	}

	var dup uint64
	for _, a := range agents {
		dup += a.BroadcastStats().Duplicates
	}
	fmt.Printf("%-8s broadcast: %d/%d deliveries, %d redundant payload copies (RMR %.2f)\n",
		mode, delivered.Load(), burst*n, dup, float64(dup)/float64(burst*(n-1)))
	if optimize {
		if cost, ok := agents[0].MeanLinkCost(); ok {
			fmt.Printf("         agent 0 mean active-link RTT: %.0fµs (X-BOT oracle)\n", cost)
		}
	}
	if mode != hyparview.AgentBroadcastPlumtree {
		fmt.Println()
		return nil
	}

	// Kill a third of the agents and broadcast again: TCP resets drive the
	// survivors' repairs — HyParView refills views, Plumtree re-grafts the
	// tree — exactly like the simulator's failure experiments.
	for _, a := range agents[8:] {
		_ = a.Close()
	}
	time.Sleep(500 * time.Millisecond)
	delivered.Store(0)
	if err := agents[1].Broadcast([]byte("after the outage")); err != nil {
		return err
	}
	waitFor(&delivered, 8, 3*time.Second)
	fmt.Printf("         post-failure broadcast delivered at %d/%d survivors\n", delivered.Load(), 8)
	return nil
}

// pubsubArm layers the topic pub/sub router over Plumtree on every agent:
// all agents subscribe to topic 1, a single producer publishes a hot burst,
// and publish-side batching folds the burst into far fewer wire frames than
// messages — the same Router the simulator's workload experiment measures.
func pubsubArm() error {
	const msgs = 30
	var delivered atomic.Int64
	agents := make([]*hyparview.Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
			CyclePeriod:   200 * time.Millisecond,
			Broadcast:     hyparview.AgentBroadcastPlumtree,
			PlumtreeTimer: 50 * time.Millisecond,
			PubSub: &hyparview.PubSubConfig{
				MaxBatch:      8,
				FlushInterval: 20, // 20ms on the agent clock
			},
		})
		if err != nil {
			return err
		}
		agents = append(agents, a)
	}
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)

	for _, a := range agents {
		if err := a.Subscribe(1, func(_ uint32, _ []byte, _ int) {
			delivered.Add(1)
		}); err != nil {
			return err
		}
	}
	for i := 0; i < msgs; i++ {
		if err := agents[0].Publish(1, []byte(fmt.Sprintf("headline %d", i))); err != nil {
			return err
		}
	}
	waitFor(&delivered, msgs*n, 5*time.Second)
	st, _ := agents[0].PubSubStats()
	fmt.Printf("pub/sub  topic 1: %d/%d deliveries, %d publishes batched into %d wire frames\n",
		delivered.Load(), msgs*n, st.Published, st.Frames)
	return nil
}

func waitFor(counter *atomic.Int64, want int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for counter.Load() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}
