// Broadcast over real TCP: a loopback cluster of HyParView agents — the
// deployment path the paper left as future work (§6). Each agent is a real
// network node: framed TCP transport, connection-cache failure detection,
// periodic shuffles.
//
//	go run ./examples/broadcast-tcp
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"hyparview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const n = 12
	var delivered atomic.Int64

	agents := make([]*hyparview.Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
			CyclePeriod: 200 * time.Millisecond,
			OnDeliver: func(p []byte) {
				delivered.Add(1)
			},
		})
		if err != nil {
			return err
		}
		agents = append(agents, a)
	}

	// Join everyone through agent 0 (the contact node).
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // let a couple of shuffle cycles run

	fmt.Printf("%d agents on loopback; agent 5 active view: %v\n",
		n, agents[5].ActiveView())

	if err := agents[5].Broadcast([]byte("hello, overlay")); err != nil {
		return err
	}
	waitFor(&delivered, n, 3*time.Second)
	fmt.Printf("broadcast delivered at %d/%d nodes\n", delivered.Load(), n)

	// Kill a third of the agents and broadcast again: TCP resets drive the
	// survivors' repairs, exactly like the simulator's failure experiments.
	for _, a := range agents[8:] {
		_ = a.Close()
	}
	time.Sleep(500 * time.Millisecond)
	delivered.Store(0)
	if err := agents[1].Broadcast([]byte("after the outage")); err != nil {
		return err
	}
	waitFor(&delivered, 8, 3*time.Second)
	fmt.Printf("post-failure broadcast delivered at %d/%d survivors\n", delivered.Load(), 8)
	return nil
}

func waitFor(counter *atomic.Int64, want int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for counter.Load() < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}
